package machine

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ctdf/internal/cfg"
	"ctdf/internal/dfg"
	"ctdf/internal/interp"
	"ctdf/internal/lang"
	"ctdf/internal/machcheck"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

func translateWorkload(t *testing.T, w workloads.Workload, opt translate.Options) *translate.Result {
	t.Helper()
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestProcessorsThrottleIssue(t *testing.T) {
	res := translateWorkload(t, workloads.MustByName("independent-chains"), translate.Options{Schema: translate.Schema2})
	unlimited, err := Run(res.Graph, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Run(res.Graph, Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Stats.MaxParallelism != 1 {
		t.Errorf("P=1 issued %d ops in one cycle", p1.Stats.MaxParallelism)
	}
	if p1.Stats.Cycles <= unlimited.Stats.Cycles {
		t.Errorf("P=1 (%d cycles) should be slower than unlimited (%d)", p1.Stats.Cycles, unlimited.Stats.Cycles)
	}
	if p1.Stats.Ops != unlimited.Stats.Ops {
		t.Errorf("total work changed with processor count: %d vs %d", p1.Stats.Ops, unlimited.Stats.Ops)
	}
	if p1.Store.Snapshot() != unlimited.Store.Snapshot() {
		t.Error("final state depends on processor count")
	}
}

func TestMemLatencyStretchesMemoryChains(t *testing.T) {
	res := translateWorkload(t, workloads.RunningExample, translate.Options{Schema: translate.Schema1})
	l1, err := Run(res.Graph, Config{MemLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	l10, err := Run(res.Graph, Config{MemLatency: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Schema 1 serializes all memory operations, so the critical path must
	// grow by roughly (L-1) per memory operation.
	minGrowth := (10 - 1) * l1.Stats.MemOps
	if l10.Stats.Cycles-l1.Stats.Cycles < minGrowth {
		t.Errorf("latency 10 grew path by %d cycles, want at least %d",
			l10.Stats.Cycles-l1.Stats.Cycles, minGrowth)
	}
	if l10.Stats.MemOps != l1.Stats.MemOps {
		t.Errorf("memory op count changed with latency")
	}
}

func TestParallelismProfileSumsToOps(t *testing.T) {
	res := translateWorkload(t, workloads.MustByName("nested-loops"), translate.Options{Schema: translate.Schema2})
	out, err := Run(res.Graph, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range out.Stats.Profile {
		sum += c
	}
	if sum != out.Stats.Ops {
		t.Errorf("profile sums to %d, ops = %d", sum, out.Stats.Ops)
	}
	if out.Stats.AvgParallelism() <= 0 {
		t.Error("average parallelism must be positive")
	}
	if out.Stats.MaxParallelism < 1 {
		t.Error("max parallelism must be at least 1")
	}
}

func TestSchema2MoreParallelThanSchema1(t *testing.T) {
	// The paper's headline claim: per-variable access tokens expose
	// parallelism across statements that the single-token schema cannot.
	w := workloads.MustByName("independent-chains")
	s1 := translateWorkload(t, w, translate.Options{Schema: translate.Schema1})
	s2 := translateWorkload(t, w, translate.Options{Schema: translate.Schema2})
	o1, err := Run(s1.Graph, Config{MemLatency: 4})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Run(s2.Graph, Config{MemLatency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if o2.Stats.Cycles >= o1.Stats.Cycles {
		t.Errorf("Schema 2 (%d cycles) not faster than Schema 1 (%d)", o2.Stats.Cycles, o1.Stats.Cycles)
	}
	if o2.Stats.AvgParallelism() <= o1.Stats.AvgParallelism() {
		t.Errorf("Schema 2 parallelism %.2f not above Schema 1 %.2f",
			o2.Stats.AvgParallelism(), o1.Stats.AvgParallelism())
	}
}

func TestOptimizedNoSlowerThanSchema2(t *testing.T) {
	for _, w := range workloads.All() {
		s2 := translateWorkload(t, w, translate.Options{Schema: translate.Schema2})
		so := translateWorkload(t, w, translate.Options{Schema: translate.Schema2Opt})
		o2, err := Run(s2.Graph, Config{MemLatency: 4})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		oo, err := Run(so.Graph, Config{MemLatency: 4})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if oo.Stats.Cycles > o2.Stats.Cycles {
			t.Errorf("%s: optimized construction slower: %d vs %d cycles", w.Name, oo.Stats.Cycles, o2.Stats.Cycles)
		}
		if so.Graph.CountKind(dfg.Switch) > s2.Graph.CountKind(dfg.Switch) {
			t.Errorf("%s: optimized construction has more switches (%d) than Schema 2 (%d)",
				w.Name, so.Graph.CountKind(dfg.Switch), s2.Graph.CountKind(dfg.Switch))
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A hand-built graph with a synch that never receives its second
	// input: start feeds port 0 only; port 1's producer (a switch arm that
	// never fires) starves it.
	prog := lang.MustParse("var x\n")
	g := dfg.NewGraph(prog)
	start := g.Add(&dfg.Node{Kind: dfg.Start})
	end := g.Add(&dfg.Node{Kind: dfg.End, NIns: 1})
	sw := g.Add(&dfg.Node{Kind: dfg.Switch})
	sy := g.Add(&dfg.Node{Kind: dfg.Synch, NIns: 2})
	c := g.Add(&dfg.Node{Kind: dfg.Const, Val: 1})
	g.Connect(start.ID, 0, c.ID, 0, true)
	g.Connect(start.ID, 0, sw.ID, 0, true)
	g.Connect(c.ID, 0, sw.ID, 1, false)
	g.Connect(sw.ID, 0, sy.ID, 0, true) // true arm fires
	g.Connect(sw.ID, 1, sy.ID, 1, true) // false arm never does
	g.Connect(sy.ID, 0, end.ID, 0, true)
	out, err := Run(g, Config{})
	if !errors.Is(err, machcheck.ErrDeadlock) {
		t.Errorf("err = %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want a deadlock report", err)
	}
	var ce *machcheck.Error
	if !errors.As(err, &ce) || len(ce.Stuck) == 0 {
		t.Errorf("deadlock error carries no stuck-token diagnostics: %v", err)
	}
	if out == nil {
		t.Error("aborted run returned no partial outcome")
	}
}

func TestDuplicateTokenDetected(t *testing.T) {
	prog := lang.MustParse("var x\n")
	g := dfg.NewGraph(prog)
	start := g.Add(&dfg.Node{Kind: dfg.Start})
	end := g.Add(&dfg.Node{Kind: dfg.End, NIns: 1})
	sy := g.Add(&dfg.Node{Kind: dfg.Synch, NIns: 2})
	// Two start arcs into the same synch port: the second token collides.
	g.Connect(start.ID, 0, sy.ID, 0, true)
	g.Connect(start.ID, 0, sy.ID, 0, true)
	g.Connect(sy.ID, 0, end.ID, 0, true)
	// Validation rejects this up front.
	if err := g.Validate(); err == nil {
		t.Error("Validate should reject a doubly-fed synch port")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	res := translateWorkload(t, workloads.MustByName("fib-iterative"), translate.Options{Schema: translate.Schema2})
	if _, err := Run(res.Graph, Config{MaxCycles: 3}); err == nil {
		t.Error("MaxCycles must abort long executions")
	}
}

func TestEndValuesForEliminatedVariables(t *testing.T) {
	w := workloads.Workload{Name: "sum", Source: "var a, b, s\na := 4\nb := 38\ns := a + b\n"}
	res := translateWorkload(t, w, translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true})
	out, err := Run(res.Graph, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := translate.FinalSnapshot(res, out.Store, out.EndValues)
	if !strings.Contains(snap, "s=42") {
		t.Errorf("final snapshot missing s=42:\n%s", snap)
	}
}

func TestBindingAffectsResults(t *testing.T) {
	w := workloads.FortranAlias
	res := translateWorkload(t, w, translate.Options{Schema: translate.Schema3})
	id, err := Run(res.Graph, Config{})
	if err != nil {
		t.Fatal(err)
	}
	xz, err := Run(res.Graph, Config{Binding: interp.Binding{"x": "x", "z": "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if id.Store.Snapshot() == xz.Store.Snapshot() {
		t.Error("sharing x and z must change the result of the §5 example")
	}
	// And each must match the interpreter under the same binding.
	g := cfg.MustBuild(w.Parse())
	for _, b := range []interp.Binding{nil, {"x": "x", "z": "x"}} {
		want, err := interp.Run(g, interp.Options{Binding: b})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(res.Graph, Config{Binding: b})
		if err != nil {
			t.Fatal(err)
		}
		if got.Store.Snapshot() != want.Store.Snapshot() {
			t.Errorf("binding %v: machine disagrees with interpreter", b)
		}
	}
}

func TestRaceDetectorUnit(t *testing.T) {
	prog := lang.MustParse("var x, z\narray a[4]\nalias x ~ z\nx := 1\n")
	r := newRaceDetector(prog, interp.Binding{"x": "x", "z": "x"})

	// Two concurrent reads: fine.
	rel1, err := r.acquire("x", -1, false)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := r.acquire("x", -1, false)
	if err != nil {
		t.Fatal(err)
	}
	// Write overlapping reads: race.
	if _, err := r.acquire("x", -1, true); err == nil {
		t.Error("write over in-flight reads must be a race")
	}
	// Aliased name sharing storage: also a race.
	if _, err := r.acquire("z", -1, true); err == nil {
		t.Error("write via alias over in-flight reads must be a race")
	}
	rel1()
	rel2()
	relW, err := r.acquire("x", -1, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.acquire("z", -1, false); err == nil {
		t.Error("read via alias over in-flight write must be a race")
	}
	relW()

	// Distinct array elements never conflict.
	relA, err := r.acquire("a", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.acquire("a", 1, true); err != nil {
		t.Errorf("distinct elements flagged: %v", err)
	}
	relA()
}

// slowWriter models an expensive trace sink: each firing's trace line
// costs per of wall-clock time, so a run's real duration is decoupled
// from its cycle count.
type slowWriter struct{ per time.Duration }

func (w slowWriter) Write(p []byte) (int, error) { time.Sleep(w.per); return len(p), nil }

// TestTinyDeadlineAbortsPromptly pins the adaptive deadline sampling: the
// wall clock is consulted every deadlineStride schedulable units, so a
// run whose firings are slow aborts within a bounded number of firings of
// the deadline expiring. The retired sampling scheme checked only at
// cycle numbers divisible by 1024 — this run stays far below 1024 cycles,
// so it would have ground through every slow firing and returned success
// long after its deadline.
func TestTinyDeadlineAbortsPromptly(t *testing.T) {
	res := translateWorkload(t, workloads.MustByName("fib-iterative"), translate.Options{Schema: translate.Schema2Opt})
	start := time.Now()
	out, err := Run(res.Graph, Config{
		Processors: 1,
		Deadline:   20 * time.Millisecond,
		Trace:      slowWriter{per: time.Millisecond},
	})
	if !errors.Is(err, machcheck.ErrDeadline) {
		t.Fatalf("want %v, got err=%v out=%+v", machcheck.ErrDeadline, err, out)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("deadline abort took %v; wall-clock sampling is too coarse", el)
	}
}

// TestInvalidConfigRejected checks every negative knob is rejected up
// front with a typed InvalidConfig machine check and no partial outcome,
// instead of being silently clamped or wedging the run.
func TestInvalidConfigRejected(t *testing.T) {
	res := translateWorkload(t, workloads.MustByName("straightline"), translate.Options{Schema: translate.Schema2Opt})
	bad := []Config{
		{Processors: -1},
		{MemLatency: -2},
		{MaxCycles: -3},
		{MaxOps: -4},
		{ProfileLimit: -5},
		{Deadline: -time.Second},
	}
	for _, c := range bad {
		out, err := Run(res.Graph, c)
		if !errors.Is(err, machcheck.ErrInvalidConfig) {
			t.Errorf("config %+v: want ErrInvalidConfig, got %v", c, err)
		}
		if out != nil {
			t.Errorf("config %+v: rejected config must not produce an outcome, got %+v", c, out)
		}
	}
}
