package machine

import (
	"strconv"
	"time"

	"ctdf/internal/obs/telemetry"
)

// machineTel is the machine's telemetry probe (Config.Telemetry). A nil
// probe disables everything at the cost of one nil check per phase —
// never per firing on the hot path — so the disabled engine stays
// within the BenchmarkTelemetryDisabled overhead budget.
//
// Determinism contract (see the telemetry package doc): the parallel
// phases write only plain per-shard scratch (telFireNs, telDelivNs,
// telPureFired on shardState); the sequential cycle merge folds that
// scratch into the registry's atomic instruments iterating shards in
// order 0..W-1, so series creation order — and therefore the rendered
// exposition — is byte-deterministic for a fixed worker count, while
// the invariant families (cycles, firings, tokens, matches, match-store
// depth/peak, checkpoint count) come out byte-identical at every worker
// count because the simulated execution does.
type machineTel struct {
	w int

	// Invariant counters, sampled once per cycle at the boundary.
	cycles, firings    *telemetry.Series
	delivered, matches *telemetry.Series
	matchDepth         *telemetry.Series
	matchPeak          *telemetry.Series
	checkpoints        *telemetry.Series
	ckSec              *telemetry.Series

	// Phase wall time: select/retire run on the coordinator ("seq"),
	// fire/deliver per shard; barrier waits are the coordinator's time
	// parked at the two phase barriers.
	selSec, retSec    *telemetry.Series
	fireSec, delivSec []*telemetry.Series
	barFire, barDeliv *telemetry.Series
	fireFirings       *telemetry.Series
	retireFirings     *telemetry.Series
	outbox, inbox     []*telemetry.Series

	// traffic[src][dst] is the cross-shard token matrix, rows 0..w-1
	// for shard sources plus the "seq" (sequential step) and "mem"
	// (latency release) lanes. Series are created lazily — only lanes
	// that actually carry tokens appear — in deterministic order, since
	// all creation happens in sequential merge code.
	trafficFam *telemetry.Family
	traffic    [][]*telemetry.Series

	// Cycle-boundary scratch for delta sampling.
	prevDelivered int64
	prevMatches   int
}

func newMachineTel(reg *telemetry.Registry, w int) *machineTel {
	t := &machineTel{w: w}
	t.cycles = reg.Family(telemetry.SpecMachineCycles).Series()
	t.firings = reg.Family(telemetry.SpecMachineFirings).Series()
	t.delivered = reg.Family(telemetry.SpecMachineTokens).Series()
	t.matches = reg.Family(telemetry.SpecMachineMatches).Series()
	t.matchDepth = reg.Family(telemetry.SpecMachineMatchDepth).Series()
	t.matchPeak = reg.Family(telemetry.SpecMachineMatchPeak).Series()
	t.checkpoints = reg.Family(telemetry.SpecMachineCheckpoints).Series()
	t.ckSec = reg.Family(telemetry.SpecMachineCheckpointSeconds).Series()
	phase := reg.Family(telemetry.SpecMachinePhaseSeconds)
	t.selSec = phase.Series("select", "seq")
	t.retSec = phase.Series("retire", "seq")
	for i := 0; i < w; i++ {
		t.fireSec = append(t.fireSec, phase.Series("fire", strconv.Itoa(i)))
		t.delivSec = append(t.delivSec, phase.Series("deliver", strconv.Itoa(i)))
	}
	bar := reg.Family(telemetry.SpecMachineBarrierSeconds)
	t.barFire = bar.Series("fire")
	t.barDeliv = bar.Series("deliver")
	t.trafficFam = reg.Family(telemetry.SpecMachineTraffic)
	t.traffic = make([][]*telemetry.Series, w+2)
	for i := range t.traffic {
		t.traffic[i] = make([]*telemetry.Series, w)
	}
	ob := reg.Family(telemetry.SpecMachineOutbox)
	ib := reg.Family(telemetry.SpecMachineInbox)
	for i := 0; i < w; i++ {
		t.outbox = append(t.outbox, ob.Series(strconv.Itoa(i)))
		t.inbox = append(t.inbox, ib.Series(strconv.Itoa(i)))
	}
	pf := reg.Family(telemetry.SpecMachinePhaseFirings)
	t.fireFirings = pf.Series("fire")
	t.retireFirings = pf.Series("retire")
	return t
}

// Traffic-matrix source-lane row indices: rows 0..w-1 are shard
// sources; the two extra lanes follow.
func (t *machineTel) seqLane() int { return t.w }
func (t *machineTel) memLane() int { return t.w + 1 }

func (t *machineTel) srcName(row int) string {
	switch row {
	case t.w:
		return "seq"
	case t.w + 1:
		return "mem"
	default:
		return strconv.Itoa(row)
	}
}

// trafficAdd counts n tokens on the src→dst lane, creating the series
// on first use. Called only from sequential code.
func (t *machineTel) trafficAdd(src, dst, n int) {
	s := t.traffic[src][dst]
	if s == nil {
		s = t.trafficFam.Series(t.srcName(src), strconv.Itoa(dst))
		t.traffic[src][dst] = s
	}
	s.Add(int64(n))
}

// sampleDepth records the matching-store population, once per main-loop
// iteration at the same point in both engines — which is what makes the
// histogram invariant across worker counts.
func (t *machineTel) sampleDepth(m *sim) {
	if t == nil {
		return
	}
	t.matchDepth.Observe(int64(m.totalMatchCount()), telemetry.DepthBuckets)
}

// cycleCounts folds the cycle's deterministic deltas into the invariant
// counters at the end of the loop body (after delivery/merge), again at
// the same point in both engines.
func (t *machineTel) cycleCounts(m *sim, issue int) {
	if t == nil {
		return
	}
	t.cycles.Add(1)
	t.firings.Add(int64(issue))
	t.delivered.Add(m.delivered - t.prevDelivered)
	t.prevDelivered = m.delivered
	t.matches.Add(int64(m.stats.Matches - t.prevMatches))
	t.prevMatches = m.stats.Matches
	t.matchPeak.SetMax(int64(m.stats.PeakMatchStore))
}

// observeSeconds records a duration into a seconds histogram.
func observeSeconds(s *telemetry.Series, d time.Duration) {
	s.Observe(d.Nanoseconds(), telemetry.TimeBuckets)
}

// mergeSharded runs inside mergeCycle, before the per-cycle scratch is
// reset: it folds the parallel phases' plain per-shard scratch into the
// registry in shard order, counts the cycle's outbox traffic into the
// src→dst matrix, and records occupancy. The seq/mem inbox lanes are
// written by the coordinator, so they count under their own source
// rows.
func (t *machineTel) mergeSharded(m *sim) {
	if t == nil {
		return
	}
	for _, sh := range m.shs {
		t.fireSec[sh.id].Observe(sh.telFireNs, telemetry.TimeBuckets)
		sh.telFireNs = 0
		t.delivSec[sh.id].Observe(sh.telDelivNs, telemetry.TimeBuckets)
		sh.telDelivNs = 0
		t.fireFirings.Add(sh.telPureFired)
		sh.telPureFired = 0
		t.inbox[sh.id].Observe(sh.delivered, telemetry.DepthBuckets)
		staged := int64(0)
		for d, ob := range sh.outbox {
			if n := len(ob); n > 0 {
				staged += int64(n)
				t.trafficAdd(sh.id, d, n)
			}
		}
		t.outbox[sh.id].Observe(staged, telemetry.DepthBuckets)
	}
	for d, b := range m.seqBox {
		if len(b) > 0 {
			t.trafficAdd(t.seqLane(), d, len(b))
		}
	}
	for d, b := range m.relBox {
		if len(b) > 0 {
			t.trafficAdd(t.memLane(), d, len(b))
		}
	}
}
