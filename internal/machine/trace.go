package machine

import "ctdf/internal/obs"

// ProfileChart renders the parallelism profile as an ASCII bar chart:
// time flows left to right (bucketed to fit width), bar height is the
// number of operations issued. The rendering lives in the shared
// observability package; the historical trace-line format is likewise
// produced by an obs.TraceSink attached in Run when Config.Trace is set.
func (s Stats) ProfileChart(width, height int) string {
	return obs.ProfileChart(s.Profile, s.Cycles, width, height)
}
