package workloads

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/interp"
	"ctdf/internal/lang"
)

func TestAllWorkloadsParseAndTerminate(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			p, err := lang.Parse(w.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			g, err := cfg.Build(p)
			if err != nil {
				t.Fatalf("cfg: %v", err)
			}
			if _, err := interp.Run(g, interp.Options{MaxSteps: 1_000_000}); err != nil {
				t.Fatalf("run: %v", err)
			}
		})
	}
}

func TestWorkloadValues(t *testing.T) {
	run := func(w Workload) *interp.Store {
		g := cfg.MustBuild(w.Parse())
		r, err := interp.Run(g, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r.Store
	}
	if s := run(RunningExample); s.Get("x") != 5 || s.Get("y") != 5 {
		t.Error("running example must end with x=5 y=5")
	}
	if s := run(MustByName("fib-iterative")); s.Get("a") != 144 {
		t.Errorf("fib(12) = %d, want 144", s.Get("a"))
	}
	if s := run(MustByName("gcd")); s.Get("a") != 21 {
		t.Errorf("gcd(252,105) = %d, want 21", s.Get("a"))
	}
	if s := run(MustByName("matmul-2x2-flat")); s.Array("c")[0] != 19 || s.Array("c")[3] != 50 {
		t.Errorf("matmul c = %v, want [19 22 43 50]", s.Array("c"))
	}
	if s := run(MustByName("array-sum")); s.Get("s") != 1240 {
		t.Errorf("array-sum s = %d, want 1240", s.Get("s"))
	}
	if s := run(Fig14ArrayLoop); s.Array("x")[10] != 1 || s.Array("x")[0] != 0 {
		t.Errorf("fig14 x = %v", s.Array("x"))
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := Random(7, 4, 2)
	b := Random(7, 4, 2)
	if a.Source != b.Source {
		t.Error("Random not deterministic for a fixed seed")
	}
	c := Random(8, 4, 2)
	if a.Source == c.Source {
		t.Error("different seeds produced identical programs")
	}
}

func TestRandomProgramsParseAndTerminate(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		w := Random(seed, 5, 3)
		p, err := lang.Parse(w.Source)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, w.Source)
		}
		g, err := cfg.Build(p)
		if err != nil {
			t.Fatalf("seed %d: cfg: %v\n%s", seed, err, w.Source)
		}
		if _, err := interp.Run(g, interp.Options{MaxSteps: 2_000_000}); err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, w.Source)
		}
	}
}

func TestRandomAliasedLegalBindings(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		w := RandomAliased(seed, 3, 2)
		p, err := lang.Parse(w.Source)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, w.Source)
		}
		b := interp.Binding{"v0": "v0", "v1": "v0"}
		if err := b.Validate(p); err != nil {
			t.Fatalf("seed %d: binding illegal: %v", seed, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("no-such-workload"); err == nil {
		t.Error("ByName must return an error for unknown names")
	}
	if w, err := ByName("fib-iterative"); err != nil || w.Name != "fib-iterative" {
		t.Errorf("ByName(fib-iterative) = %v, %v", w.Name, err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName must panic for unknown names")
		}
	}()
	MustByName("no-such-workload")
}
