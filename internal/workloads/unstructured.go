package workloads

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomUnstructured generates a seeded random program built from
// goto-based patterns — multi-exit counted loops with data-dependent early
// exits, forward skips, and two-way unstructured merges — the control
// flow the paper's §4 machinery exists for. Programs terminate by
// construction (every cycle is bounded by a dedicated counter) and remain
// reducible (every goto targets either the top of its own pattern's loop
// or a forward label in the same pattern).
func RandomUnstructured(seed int64, size int) Workload {
	r := rand.New(rand.NewSource(seed))
	g := &ugen{r: r}
	nvars := 3 + r.Intn(3)
	for i := 0; i < nvars; i++ {
		g.scalars = append(g.scalars, fmt.Sprintf("v%d", i))
	}
	g.arr = "arr"
	g.arrSize = 8

	var b strings.Builder
	for i := 0; i < size; i++ {
		g.pattern(&b)
	}
	var decls strings.Builder
	fmt.Fprintf(&decls, "var %s\n", strings.Join(g.scalars, ", "))
	if g.counters > 0 {
		var cs []string
		for i := 0; i < g.counters; i++ {
			cs = append(cs, fmt.Sprintf("u%d", i))
		}
		fmt.Fprintf(&decls, "var %s\n", strings.Join(cs, ", "))
	}
	fmt.Fprintf(&decls, "array %s[%d]\n", g.arr, g.arrSize)
	return Workload{
		Name:   fmt.Sprintf("random-unstructured-%d", seed),
		Source: decls.String() + b.String(),
	}
}

// RandomProcs generates a seeded random program with one or two
// procedures (straight-line or lightly branching bodies over their formals
// and a shared global) and several calls whose actual tuples may repeat a
// variable — inducing aliased formals exactly as the paper's §5 FORTRAN
// example does. Programs terminate by construction (no loops inside
// bodies; the main body may wrap calls in counted loops).
func RandomProcs(seed int64, calls int) Workload {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	nvars := 3 + r.Intn(3)
	var names []string
	for i := 0; i < nvars; i++ {
		names = append(names, fmt.Sprintf("g%d", i))
	}
	fmt.Fprintf(&b, "var %s\n", strings.Join(names, ", "))

	v := func() string { return names[r.Intn(len(names))] }
	expr := func(vars []string) string {
		pick := func() string {
			if r.Intn(3) == 0 {
				return fmt.Sprint(1 + r.Intn(9))
			}
			return vars[r.Intn(len(vars))]
		}
		ops := []string{"+", "-", "*"}
		e := pick()
		for i := 0; i < 1+r.Intn(2); i++ {
			e = fmt.Sprintf("(%s %s %s)", e, ops[r.Intn(len(ops))], pick())
		}
		return e
	}

	// One or two procedures.
	nprocs := 1 + r.Intn(2)
	var procs []struct {
		name   string
		nparam int
	}
	for pi := 0; pi < nprocs; pi++ {
		name := fmt.Sprintf("p%d", pi)
		nparam := 1 + r.Intn(3)
		var params []string
		for i := 0; i < nparam; i++ {
			params = append(params, fmt.Sprintf("f%d", i))
		}
		scope := append(append([]string(nil), params...), names[0])
		fmt.Fprintf(&b, "proc %s(%s) {\n", name, strings.Join(params, ", "))
		for i := 0; i < 2+r.Intn(3); i++ {
			target := scope[r.Intn(len(scope))]
			if r.Intn(4) == 0 {
				fmt.Fprintf(&b, "  if %s < %d {\n    %s := %s\n  }\n",
					scope[r.Intn(len(scope))], r.Intn(10), target, expr(scope))
			} else {
				fmt.Fprintf(&b, "  %s := %s\n", target, expr(scope))
			}
		}
		fmt.Fprintf(&b, "}\n")
		procs = append(procs, struct {
			name   string
			nparam int
		}{name, nparam})
	}

	// Main: seed globals, then random calls (sometimes inside a counted
	// loop), sometimes repeating an actual to alias formals.
	for i, n := range names {
		fmt.Fprintf(&b, "%s := %d\n", n, i+1)
	}
	counters := 0
	for c := 0; c < calls; c++ {
		pr := procs[r.Intn(len(procs))]
		var args []string
		for i := 0; i < pr.nparam; i++ {
			if len(args) > 0 && r.Intn(3) == 0 {
				args = append(args, args[r.Intn(len(args))]) // repeat → alias
			} else {
				args = append(args, v())
			}
		}
		call := fmt.Sprintf("call %s(%s)", pr.name, strings.Join(args, ", "))
		if r.Intn(4) == 0 {
			// Wrap the call in a counted loop; the counter's declaration
			// is patched into the declaration section afterwards.
			cn := fmt.Sprintf("k%d", counters)
			counters++
			fmt.Fprintf(&b, "%s := 0\nwhile %s < %d {\n  %s\n  %s := %s + 1\n}\n",
				cn, cn, 2+r.Intn(3), call, cn, cn)
		} else {
			fmt.Fprintf(&b, "%s\n", call)
		}
	}
	src := b.String()
	if counters > 0 {
		var cs []string
		for i := 0; i < counters; i++ {
			cs = append(cs, fmt.Sprintf("k%d", i))
		}
		src = strings.Replace(src, "proc ", fmt.Sprintf("var %s\nproc ", strings.Join(cs, ", ")), 1)
	}
	return Workload{Name: fmt.Sprintf("random-procs-%d", seed), Source: src}
}

type ugen struct {
	r        *rand.Rand
	scalars  []string
	arr      string
	arrSize  int
	counters int
	labels   int
}

func (g *ugen) v() string { return g.scalars[g.r.Intn(len(g.scalars))] }

func (g *ugen) label() string {
	g.labels++
	return fmt.Sprintf("L%d", g.labels)
}

func (g *ugen) counter() string {
	c := fmt.Sprintf("u%d", g.counters)
	g.counters++
	return c
}

func (g *ugen) expr() string {
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprint(g.r.Intn(20))
	case 1:
		return g.v()
	case 2:
		return fmt.Sprintf("%s[(%s %% %d + %d) %% %d]", g.arr, g.v(), g.arrSize, g.arrSize, g.arrSize)
	case 3:
		return fmt.Sprintf("(%s + %s)", g.v(), g.expr())
	default:
		return fmt.Sprintf("(%s * %d)", g.v(), 1+g.r.Intn(5))
	}
}

func (g *ugen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %d", g.v(), ops[g.r.Intn(len(ops))], g.r.Intn(10))
}

func (g *ugen) assign(b *strings.Builder) {
	if g.r.Intn(4) == 0 {
		fmt.Fprintf(b, "%s[(%s %% %d + %d) %% %d] := %s\n",
			g.arr, g.v(), g.arrSize, g.arrSize, g.arrSize, g.expr())
	} else {
		fmt.Fprintf(b, "%s := %s\n", g.v(), g.expr())
	}
}

// pattern emits one self-contained unstructured construct.
func (g *ugen) pattern(b *strings.Builder) {
	switch g.r.Intn(4) {
	case 0:
		// Forward skip: if p then goto skip else goto cont.
		skip, cont := g.label(), g.label()
		fmt.Fprintf(b, "if %s then goto %s else goto %s\n", g.cond(), skip, cont)
		fmt.Fprintf(b, "%s:\n", cont)
		g.assign(b)
		g.assign(b)
		fmt.Fprintf(b, "%s:\n", skip)
		g.assign(b)

	case 1:
		// Diamond with unstructured merge (the paper's l1/l2/l3 shape).
		l1, l2, l3 := g.label(), g.label(), g.label()
		fmt.Fprintf(b, "if %s then goto %s else goto %s\n", g.cond(), l1, l2)
		fmt.Fprintf(b, "%s:\n", l1)
		g.assign(b)
		fmt.Fprintf(b, "goto %s\n", l3)
		fmt.Fprintf(b, "%s:\n", l2)
		g.assign(b)
		g.assign(b)
		fmt.Fprintf(b, "%s:\n", l3)
		g.assign(b)

	case 2:
		// Multi-exit counted loop: a data-dependent early exit and the
		// counter exit converge at an unstructured join.
		c := g.counter()
		top, cont, exit1, exit2, after := g.label(), g.label(), g.label(), g.label(), g.label()
		n := 3 + g.r.Intn(5)
		fmt.Fprintf(b, "%s := 0\n", c)
		fmt.Fprintf(b, "%s:\n", top)
		fmt.Fprintf(b, "%s := %s + 1\n", c, c)
		g.assign(b)
		fmt.Fprintf(b, "if %s then goto %s else goto %s\n", g.cond(), exit1, cont)
		fmt.Fprintf(b, "%s:\n", cont)
		g.assign(b)
		fmt.Fprintf(b, "if %s < %d then goto %s else goto %s\n", c, n, top, exit2)
		fmt.Fprintf(b, "%s:\n", exit1)
		g.assign(b)
		fmt.Fprintf(b, "goto %s\n", after)
		fmt.Fprintf(b, "%s:\n", exit2)
		g.assign(b)
		fmt.Fprintf(b, "%s:\n", after)

	default:
		// Counted loop with two back edges to the same header.
		c := g.counter()
		top, mid, out := g.label(), g.label(), g.label()
		n := 3 + g.r.Intn(5)
		fmt.Fprintf(b, "%s := 0\n", c)
		fmt.Fprintf(b, "%s:\n", top)
		fmt.Fprintf(b, "%s := %s + 1\n", c, c)
		fmt.Fprintf(b, "if %s < %d then goto %s else goto %s\n", c, n, midOrTop(g, top, mid), mid)
		fmt.Fprintf(b, "%s:\n", mid)
		g.assign(b)
		fmt.Fprintf(b, "if %s < %d then goto %s else goto %s\n", c, n, top, out)
		fmt.Fprintf(b, "%s:\n", out)
		g.assign(b)
	}
}

// midOrTop picks the true arm of the inner fork: jumping straight back to
// the header creates the second back edge half the time.
func midOrTop(g *ugen, top, mid string) string {
	if g.r.Intn(2) == 0 {
		return top
	}
	return mid
}
