// Package workloads supplies the programs the experiments and tests run:
// the paper's own examples (the running example of §2.1, the redundant
// switch example of Figure 9, the array store loop of §6.3, the FORTRAN
// aliasing example of §5), a set of classic kernels, and seeded random
// program generators for property testing.
package workloads

import (
	"fmt"
	"math/rand"
	"strings"

	"ctdf/internal/lang"
)

// Workload is a named source program.
type Workload struct {
	Name string
	// Paper identifies the paper artifact this reproduces, if any.
	Paper  string
	Source string
}

// Parse parses the workload's source.
func (w Workload) Parse() *lang.Program { return lang.MustParse(w.Source) }

// RunningExample is the paper's running example (§2.1, Figures 1, 5, 8):
// terminates with x = 5, y = 5.
var RunningExample = Workload{
	Name:  "running-example",
	Paper: "Figure 1",
	Source: `
var x, y
l: y := x + 1
x := x + 1
if x < 5 then goto l else goto end
`,
}

// Fig9Example is the restrictive-sequential-ordering example of Figure 9:
// x is not used inside the conditional, so its access token should bypass
// the construct entirely under the optimized construction.
var Fig9Example = Workload{
	Name:  "fig9-bypass",
	Paper: "Figure 9",
	Source: `
var x, w, y
x := x + 1
if w == 0 {
  y := 1
} else {
  y := 2
}
x := 0
`,
}

// Fig14ArrayLoop is the array store loop of §6.3 (stores to successive
// elements are independent).
var Fig14ArrayLoop = Workload{
	Name:  "fig14-array-stores",
	Paper: "Figure 14",
	Source: `
var i
array x[11]
start: i := i + 1
x[i] := 1
if i < 10 then goto start else goto end
`,
}

// FortranAlias mirrors the §5 FORTRAN example: [X]={X,Z}, [Y]={Y,Z},
// [Z]={X,Y,Z}.
var FortranAlias = Workload{
	Name:  "fortran-alias",
	Paper: "§5 example",
	Source: `
var x, y, z, r
alias x ~ z
alias y ~ z
x := 10
y := 20
z := x + y
r := z * 2
`,
}

// Kernels is a set of classic terminating programs exercising loops,
// conditionals, arrays, and scalar dataflow.
var Kernels = []Workload{
	{
		Name: "straightline",
		Source: `
var a, b, c, d
a := 3
b := a * a
c := b - a
d := (a + b) * (c + 1)
`,
	},
	{
		Name: "independent-chains",
		Source: `
var a, b, c, d, e, f
a := 1
a := a + 1
a := a * 3
b := 2
b := b + 5
b := b * 7
c := 3
c := c - 1
c := c * c
d := a
e := b
f := c
`,
	},
	{
		Name: "diamond",
		Source: `
var a, b, m
a := 7
b := 9
if a < b {
  m := b
} else {
  m := a
}
`,
	},
	{
		Name: "fib-iterative",
		Source: `
var a, b, t, i, n
n := 12
a := 0
b := 1
i := 0
while i < n {
  t := a + b
  a := b
  b := t
  i := i + 1
}
`,
	},
	{
		Name: "gcd",
		Source: `
var a, b, t
a := 252
b := 105
while b != 0 {
  t := a % b
  a := b
  b := t
}
`,
	},
	{
		Name: "nested-loops",
		Source: `
var i, j, s
i := 0
while i < 6 {
  j := 0
  while j < 4 {
    s := s + i * j
    j := j + 1
  }
  i := i + 1
}
`,
	},
	{
		Name: "array-sum",
		Source: `
var i, s
array a[16]
i := 0
while i < 16 {
  a[i] := i * i
  i := i + 1
}
i := 0
while i < 16 {
  s := s + a[i]
  i := i + 1
}
`,
	},
	{
		Name: "prefix-recurrence",
		Source: `
var i
array a[12]
a[0] := 1
i := 1
while i < 12 {
  a[i] := a[i-1] * 2 + 1
  i := i + 1
}
`,
	},
	{
		Name: "matmul-2x2-flat",
		Source: `
var i, j, k, s
array a[4], b[4], c[4]
a[0] := 1
a[1] := 2
a[2] := 3
a[3] := 4
b[0] := 5
b[1] := 6
b[2] := 7
b[3] := 8
i := 0
while i < 2 {
  j := 0
  while j < 2 {
    s := 0
    k := 0
    while k < 2 {
      s := s + a[i*2+k] * b[k*2+j]
      k := k + 1
    }
    c[i*2+j] := s
    j := j + 1
  }
  i := i + 1
}
`,
	},
	{
		Name: "unstructured-two-exit",
		Source: `
var x, y
top:
x := x + 1
if x > 9 then goto out else goto more
more:
y := y + 1
if y > 6 then goto out else goto top
out:
y := y * 10
`,
	},
	{
		Name: "unstructured-skip",
		Source: `
var x, w
x := x + 1
if w == 0 then goto l1 else goto l2
l1:
w := 1
goto l3
l2:
w := 2
l3:
x := x * 10
`,
	},
	{
		Name: "early-exit-goto-end",
		Source: `
var a, b
a := 5
if a > 3 then goto quit else goto cont
cont:
b := 77
quit:
`,
	},
	{
		Name: "aliased-swap",
		Source: `
var x, y, z, t
alias x ~ z
alias y ~ z
x := 1
y := 2
t := x
x := y
y := t
z := z + 100
`,
	},
	{
		Name: "aliased-arrays",
		Source: `
var i, s
array p[8], q[8]
alias p ~ q
i := 0
while i < 8 {
  p[i] := i
  i := i + 1
}
i := 0
while i < 8 {
  s := s + q[7-i]
  i := i + 1
}
`,
	},
	{
		// A loop that never references x, yet its forks decide which
		// x-assignment runs after it: access_x must circulate through the
		// loop under the optimized construction.
		Name: "loop-external-consumer",
		Source: `
var x, y
top:
y := y + 1
if y > 9 then goto hot else goto cold
hot:
x := 1
goto after
cold:
if y < 5 then goto top else goto coldexit
coldexit:
x := 2
after:
x := x * 3
`,
	},
	{
		// Producer loop filling an array, consumer loop folding it: the
		// §6.3 I-structure case (the consumer can overlap the producer
		// when the array is write-once).
		Name: "producer-consumer",
		Source: `
var i, j, s
array a[16]
i := 0
while i < 16 {
  a[i] := i * 3
  i := i + 1
}
j := 0
while j < 16 {
  s := s + a[j]
  j := j + 1
}
`,
	},
	{
		// The §5 tradeoff workload: an alias cluster (x~z, y~z) beside
		// three independent unaliased chains. A fine cover keeps the
		// chains parallel at the cost of multi-token collections on the
		// cluster; the monolithic cover collects one token everywhere but
		// serializes the chains.
		Name: "cover-tradeoff",
		Source: `
var x, y, z, a, b, c
alias x ~ z
alias y ~ z
x := 1
z := x + 1
y := z * 2
a := 10
a := a * a
a := a - 7
b := 20
b := b + b
b := b * 3
c := 30
c := c % 7
c := c + 100
`,
	},
	{
		Name: "read-heavy",
		Source: `
var s
array a[8]
a[0] := 3
a[1] := 1
a[2] := 4
a[3] := 1
a[4] := 5
a[5] := 9
a[6] := 2
a[7] := 6
s := a[0] + a[1] + a[2] + a[3] + a[4] + a[5] + a[6] + a[7]
`,
	},
	{
		Name: "bubble-sort",
		Source: `
var i, j, t, n
array a[10]
n := 10
i := 0
while i < n {
  a[i] := (7 * i + 3) % 11
  i := i + 1
}
i := 0
while i < n - 1 {
  j := 0
  while j < n - 1 - i {
    if a[j] > a[j+1] {
      t := a[j]
      a[j] := a[j+1]
      a[j+1] := t
    }
    j := j + 1
  }
  i := i + 1
}
`,
	},
	{
		Name: "sieve",
		Source: `
var i, j, count
array prime[30]
i := 2
while i < 30 {
  prime[i] := 1
  i := i + 1
}
i := 2
while i * i < 30 {
  if prime[i] == 1 {
    j := i * i
    while j < 30 {
      prime[j] := 0
      j := j + i
    }
  }
  i := i + 1
}
i := 2
while i < 30 {
  count := count + prime[i]
  i := i + 1
}
`,
	},
	{
		Name: "collatz-bounded",
		Source: `
var n, steps
n := 27
while n != 1 && steps < 120 {
  if n % 2 == 0 {
    n := n / 2
  } else {
    n := 3 * n + 1
  }
  steps := steps + 1
}
`,
	},
	{
		Name:  "proc-fortran",
		Paper: "§5 subroutine example",
		Source: `
var a, b, c, d
proc f(x, y, z) {
  z := x + y
  x := x * 2
}
a := 1
b := 2
call f(a, b, a)
c := 10
d := 20
call f(c, d, d)
`,
	},
	{
		Name: "proc-in-loop",
		Source: `
var acc, i
proc addsq(v, out) {
  out := out + v * v
}
i := 0
while i < 6 {
  call addsq(i, acc)
  i := i + 1
}
`,
	},
	{
		Name: "deep-expression",
		Source: `
var a, b, c
a := 2
b := 3
c := ((a+b)*(a-b) + (a*b - a/b)) * ((b-a)*(b+a) % 17 + 1) - (a+1)*(b+1)
`,
	},
}

// All returns the paper examples plus every kernel.
func All() []Workload {
	out := []Workload{RunningExample, Fig9Example, Fig14ArrayLoop, FortranAlias}
	return append(out, Kernels...)
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: no workload named %q", name)
}

// MustByName returns the named workload, panicking if absent. It exists
// for test fixtures and benchmarks where the name is a compile-time
// constant; anything handling user input must use ByName.
func MustByName(name string) Workload {
	w, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

// Wide generates a program of `lanes` fully independent counter loops,
// each folding its own scalar accumulator for `iters` iterations. No
// lane shares a variable with any other, so the dataflow graph is
// `lanes` disjoint cyclic subgraphs and the machine's per-cycle issue
// width stays proportional to the lane count for the whole run — the
// worker-scaling benchmark shape (see SCALING.md). It is a generator
// rather than a Kernels entry so the exhaustive workload × schema
// matrices (goldens, vet, replay) don't pay for its size.
func Wide(lanes, iters int) Workload {
	var names []string
	for l := 0; l < lanes; l++ {
		names = append(names, fmt.Sprintf("i%d", l), fmt.Sprintf("s%d", l))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "var %s\n", strings.Join(names, ", "))
	for l := 0; l < lanes; l++ {
		fmt.Fprintf(&b, "i%d := 0\nwhile i%d < %d {\n  s%d := s%d * 3 + i%d + 1\n  i%d := i%d + 1\n}\n",
			l, l, iters, l, l, l, l, l)
	}
	return Workload{Name: fmt.Sprintf("wide-%dx%d", lanes, iters), Source: b.String()}
}

// Random generates a seeded random structured program that terminates by
// construction: loops are canned counters, conditionals branch on computed
// scalars, and a pool of scalars and one array receive random assignments.
// Depth controls nesting; size roughly controls statement count.
func Random(seed int64, size, depth int) Workload {
	r := rand.New(rand.NewSource(seed))
	g := &gen{r: r, counters: 0}
	nvars := 3 + r.Intn(4)
	var names []string
	for i := 0; i < nvars; i++ {
		names = append(names, fmt.Sprintf("v%d", i))
	}
	g.scalars = names
	g.arr = "arr"
	g.arrSize = 8

	var b strings.Builder
	fmt.Fprintf(&b, "var %s\n", strings.Join(names, ", "))
	fmt.Fprintf(&b, "array %s[%d]\n", g.arr, g.arrSize)
	body := g.block(size, depth)
	b.WriteString(body)
	// Declare the loop counters the generator invented.
	src := b.String()
	if g.counters > 0 {
		var cs []string
		for i := 0; i < g.counters; i++ {
			cs = append(cs, fmt.Sprintf("c%d", i))
		}
		src = strings.Replace(src, "array", fmt.Sprintf("var %s\narray", strings.Join(cs, ", ")), 1)
	}
	return Workload{Name: fmt.Sprintf("random-%d", seed), Source: src}
}

// RandomAliased is Random plus alias declarations over a few scalars.
func RandomAliased(seed int64, size, depth int) Workload {
	w := Random(seed, size, depth)
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	// Declare v0~v1 and possibly v1~v2 (non-transitive chain, like the
	// paper's X~Z, Y~Z example).
	extra := "alias v0 ~ v1\n"
	if r.Intn(2) == 0 {
		extra += "alias v1 ~ v2\n"
	}
	idx := strings.Index(w.Source, "array")
	w.Source = w.Source[:idx] + extra + w.Source[idx:]
	w.Name = fmt.Sprintf("random-aliased-%d", seed)
	return w
}

type gen struct {
	r        *rand.Rand
	scalars  []string
	arr      string
	arrSize  int
	counters int
}

func (g *gen) v() string { return g.scalars[g.r.Intn(len(g.scalars))] }

// expr returns a random expression of bounded depth.
func (g *gen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprint(g.r.Intn(20))
		case 1:
			return g.v()
		default:
			return fmt.Sprintf("%s[(%s %% %d + %d) %% %d]", g.arr, g.v(), g.arrSize, g.arrSize, g.arrSize)
		}
	}
	ops := []string{"+", "-", "*"}
	op := ops[g.r.Intn(len(ops))]
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
}

func (g *gen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s", g.v(), ops[g.r.Intn(len(ops))], g.expr(1))
}

func (g *gen) block(size, depth int) string {
	var b strings.Builder
	for i := 0; i < size; i++ {
		switch k := g.r.Intn(10); {
		case k < 5 || depth == 0:
			if g.r.Intn(4) == 0 {
				fmt.Fprintf(&b, "%s[(%s %% %d + %d) %% %d] := %s\n", g.arr, g.v(), g.arrSize, g.arrSize, g.arrSize, g.expr(2))
			} else {
				fmt.Fprintf(&b, "%s := %s\n", g.v(), g.expr(2))
			}
		case k < 8:
			fmt.Fprintf(&b, "if %s {\n%s}", g.cond(), g.block(1+g.r.Intn(3), depth-1))
			if g.r.Intn(2) == 0 {
				fmt.Fprintf(&b, " else {\n%s}", g.block(1+g.r.Intn(3), depth-1))
			}
			b.WriteString("\n")
		default:
			c := fmt.Sprintf("c%d", g.counters)
			g.counters++
			n := 2 + g.r.Intn(4)
			fmt.Fprintf(&b, "%s := 0\nwhile %s < %d {\n%s%s := %s + 1\n}\n",
				c, c, n, g.block(1+g.r.Intn(3), depth-1), c, c)
		}
	}
	return b.String()
}
