package dfg

import (
	"strings"
	"testing"

	"ctdf/internal/lang"
)

func scratch() *Graph {
	return NewGraph(lang.MustParse("var x\n"))
}

func TestAddAssignsIDsAndArity(t *testing.T) {
	g := scratch()
	s := g.Add(&Node{Kind: Start})
	e := g.Add(&Node{Kind: End, NIns: 1})
	b := g.Add(&Node{Kind: BinOp, Op: lang.OpAdd})
	if s.ID != 0 || e.ID != 1 || b.ID != 2 {
		t.Errorf("IDs not sequential: %d %d %d", s.ID, e.ID, b.ID)
	}
	if b.NIns != 2 {
		t.Errorf("binop NIns = %d, want 2", b.NIns)
	}
	if g.StartID != s.ID || g.EndID != e.ID {
		t.Error("start/end not registered")
	}
}

func TestConnectAndArcLookup(t *testing.T) {
	g := scratch()
	s := g.Add(&Node{Kind: Start})
	e := g.Add(&Node{Kind: End, NIns: 1})
	g.Connect(s.ID, 0, e.ID, 0, true)
	arcs := g.OutArcs(s.ID, 0)
	if len(arcs) != 1 || arcs[0].To != e.ID || !arcs[0].Dummy {
		t.Errorf("arcs = %+v", arcs)
	}
	if g.InDegree(e.ID, 0) != 1 {
		t.Errorf("in-degree = %d", g.InDegree(e.ID, 0))
	}
	if g.NumArcs() != 1 || g.NumNodes() != 2 {
		t.Errorf("counts wrong")
	}
}

func TestValidateRules(t *testing.T) {
	// Unconnected input port.
	g := scratch()
	s := g.Add(&Node{Kind: Start})
	e := g.Add(&Node{Kind: End, NIns: 1})
	b := g.Add(&Node{Kind: BinOp, Op: lang.OpAdd})
	g.Connect(s.ID, 0, e.ID, 0, true)
	g.Connect(s.ID, 0, b.ID, 0, false)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "port 1") {
		t.Errorf("want unconnected-port error, got %v", err)
	}

	// Double-fed non-merge port.
	g2 := scratch()
	s2 := g2.Add(&Node{Kind: Start})
	e2 := g2.Add(&Node{Kind: End, NIns: 1})
	u := g2.Add(&Node{Kind: UnOp, Op: lang.OpNeg})
	g2.Connect(s2.ID, 0, u.ID, 0, false)
	g2.Connect(s2.ID, 0, u.ID, 0, false)
	g2.Connect(u.ID, 0, e2.ID, 0, false)
	if err := g2.Validate(); err == nil {
		t.Error("doubly-fed unop port must be rejected")
	}

	// Merge with fewer than 2 arcs.
	g3 := scratch()
	s3 := g3.Add(&Node{Kind: Start})
	e3 := g3.Add(&Node{Kind: End, NIns: 1})
	m := g3.Add(&Node{Kind: Merge})
	g3.Connect(s3.ID, 0, m.ID, 0, true)
	g3.Connect(m.ID, 0, e3.ID, 0, true)
	if err := g3.Validate(); err == nil {
		t.Error("1-input merge must be rejected")
	}

	// Missing start/end.
	g4 := scratch()
	if err := g4.Validate(); err == nil {
		t.Error("graph without start/end must be rejected")
	}

	// Out-of-range port.
	g5 := scratch()
	s5 := g5.Add(&Node{Kind: Start})
	e5 := g5.Add(&Node{Kind: End, NIns: 1})
	g5.Connect(s5.ID, 0, e5.ID, 0, true)
	g5.Arcs = append(g5.Arcs, Arc{From: s5.ID, FromPort: 3, To: e5.ID, ToPort: 0})
	if err := g5.Validate(); err == nil {
		t.Error("out-of-range port must be rejected")
	}
}

func TestStatsAndCounts(t *testing.T) {
	g := scratch()
	s := g.Add(&Node{Kind: Start})
	e := g.Add(&Node{Kind: End, NIns: 1})
	ld := g.Add(&Node{Kind: Load, Var: "x"})
	st := g.Add(&Node{Kind: Store, Var: "x"})
	sw := g.Add(&Node{Kind: Switch})
	_ = sw
	g.Connect(s.ID, 0, ld.ID, 0, true)
	g.Connect(ld.ID, 0, st.ID, 0, false)
	g.Connect(ld.ID, 1, st.ID, 1, true)
	g.Connect(st.ID, 0, e.ID, 0, true)
	stats := g.Stats()
	if stats.Loads != 1 || stats.Stores != 1 || stats.Switches != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if g.CountKind(Load) != 1 {
		t.Error("CountKind wrong")
	}
}

func TestNodeStrings(t *testing.T) {
	cases := []struct {
		n    *Node
		want string
	}{
		{&Node{ID: 1, Kind: Const, Val: 42}, "const 42"},
		{&Node{ID: 2, Kind: BinOp, Op: lang.OpMul}, "binop *"},
		{&Node{ID: 3, Kind: Load, Var: "q"}, "load q"},
		{&Node{ID: 4, Kind: Switch, Tok: "x"}, "switch[x]"},
		{&Node{ID: 5, Kind: LoopEntry, Tok: "y"}, "loop-entry[y]"},
	}
	for _, c := range cases {
		if !strings.Contains(c.n.String(), c.want) {
			t.Errorf("%q does not contain %q", c.n.String(), c.want)
		}
	}
}

func TestDOT(t *testing.T) {
	g := scratch()
	s := g.Add(&Node{Kind: Start})
	e := g.Add(&Node{Kind: End, NIns: 1})
	g.Connect(s.ID, 0, e.ID, 0, true)
	dot := g.DOT()
	if !strings.Contains(dot, "digraph dfg") || !strings.Contains(dot, "style=dashed") {
		t.Errorf("DOT output missing dashed dummy arcs:\n%s", dot)
	}
}

func TestSortedByKind(t *testing.T) {
	g := scratch()
	g.Add(&Node{Kind: Start})
	g.Add(&Node{Kind: End, NIns: 1})
	g.Add(&Node{Kind: Merge})
	g.Add(&Node{Kind: Const})
	ids := g.SortedByKind()
	if len(ids) != 4 {
		t.Fatalf("len = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		a, b := g.Nodes[ids[i-1]], g.Nodes[ids[i]]
		if a.Kind > b.Kind || (a.Kind == b.Kind && a.ID > b.ID) {
			t.Error("not sorted by kind then ID")
		}
	}
}
