package dfg

import (
	"strings"
	"testing"

	"ctdf/internal/lang"
)

func sampleGraph(t *testing.T) *Graph {
	t.Helper()
	prog := lang.MustParse("var x, z\narray a[4]\nalias x ~ z\nx := 1\n")
	g := NewGraph(prog)
	start := g.Add(&Node{Kind: Start})
	end := g.Add(&Node{Kind: End, NIns: 2})
	c := g.Add(&Node{Kind: Const, Val: 7, Stmt: 3})
	ld := g.Add(&Node{Kind: Load, Var: "x"})
	st := g.Add(&Node{Kind: Store, Var: "x"})
	bin := g.Add(&Node{Kind: BinOp, Op: lang.OpAdd})
	un := g.Add(&Node{Kind: UnOp, Op: lang.OpNeg})
	sy := g.Add(&Node{Kind: Synch, NIns: 2, Tok: "x"})
	g.Connect(start.ID, 0, c.ID, 0, true)
	g.Connect(start.ID, 0, ld.ID, 0, true)
	g.Connect(c.ID, 0, bin.ID, 0, false)
	g.Connect(ld.ID, 0, bin.ID, 1, false)
	g.Connect(bin.ID, 0, un.ID, 0, false)
	g.Connect(un.ID, 0, st.ID, 0, false)
	g.Connect(ld.ID, 1, st.ID, 1, true)
	g.Connect(st.ID, 0, sy.ID, 0, true)
	g.Connect(start.ID, 0, sy.ID, 1, true)
	g.Connect(sy.ID, 0, end.ID, 0, true)
	g.Connect(start.ID, 0, end.ID, 1, true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTextRoundTrip(t *testing.T) {
	g := sampleGraph(t)
	text := Text(g)
	g2, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, text)
	}
	if Text(g2) != text {
		t.Errorf("round trip not a fixed point:\n%s\nvs\n%s", text, Text(g2))
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumArcs() != g.NumArcs() {
		t.Error("round trip changed sizes")
	}
	// Program context carried over.
	if g2.Prog.ArraySize("a") != 4 || len(g2.Prog.Aliases) != 1 {
		t.Error("program declarations lost")
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"no header", "node d0 start\n"},
		{"bad kind", "ctdf-dataflow v1\nnode d0 zorp\n"},
		{"non-dense id", "ctdf-dataflow v1\nnode d1 start\n"},
		{"bad attr", "ctdf-dataflow v1\nnode d0 start frob=1\n"},
		{"arc before node", "ctdf-dataflow v1\narc d0.0 -> d1.0\n"},
		{"bad arc port", "ctdf-dataflow v1\nnode d0 start\nnode d1 end ins=1\narc d0.7 -> d1.0\n"},
		{"unknown node in arc", "ctdf-dataflow v1\nnode d0 start\nnode d1 end ins=1\narc d0.0 -> d9.0\n"},
		{"decl after node", "ctdf-dataflow v1\nnode d0 start\nvar x\n"},
		{"empty", "ctdf-dataflow v1\n"},
		{"bad op", "ctdf-dataflow v1\nnode d0 binop op=@\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseText(strings.NewReader(c.text)); err == nil {
				t.Errorf("accepted %q", c.text)
			}
		})
	}
}

func TestUnaryOpNamesDistinct(t *testing.T) {
	prog := lang.MustParse("var x\nx := 1\n")
	g := NewGraph(prog)
	s := g.Add(&Node{Kind: Start})
	e := g.Add(&Node{Kind: End, NIns: 1})
	neg := g.Add(&Node{Kind: UnOp, Op: lang.OpNeg})
	not := g.Add(&Node{Kind: UnOp, Op: lang.OpNot})
	g.Connect(s.ID, 0, neg.ID, 0, false)
	g.Connect(neg.ID, 0, not.ID, 0, false)
	g.Connect(not.ID, 0, e.ID, 0, false)
	text := Text(g)
	if !strings.Contains(text, "op=neg") || !strings.Contains(text, "op=not") {
		t.Errorf("unary ops not distinguished:\n%s", text)
	}
	g2, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Nodes[2].Op != lang.OpNeg || g2.Nodes[3].Op != lang.OpNot {
		t.Error("unary ops scrambled after round trip")
	}
}

func TestListing(t *testing.T) {
	g := sampleGraph(t)
	l := Listing(g)
	if !strings.Contains(l, "=>") || !strings.Contains(l, "load x") {
		t.Errorf("listing malformed:\n%s", l)
	}
	// Every node appears.
	if got := strings.Count(l, "\n"); got != g.NumNodes() {
		t.Errorf("listing has %d lines, want %d", got, g.NumNodes())
	}
}
