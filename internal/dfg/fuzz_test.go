package dfg

import (
	"strings"
	"testing"
)

// FuzzParseText checks the graph loader never panics and that anything it
// accepts survives a Text→ParseText round trip.
func FuzzParseText(f *testing.F) {
	seeds := []string{
		"ctdf-dataflow v1\nnode d0 start\nnode d1 end ins=1\narc d0.0 -> d1.0 dummy\n",
		"ctdf-dataflow v1\nvar x\nnode d0 start\nnode d1 end ins=1\nnode d2 load var=x\narc d0.0 -> d2.0 dummy\narc d2.1 -> d1.0 dummy\n",
		"ctdf-dataflow v1\nnode d0 binop op=+\n",
		"ctdf-dataflow v1\n# comment\n\nnode d0 start\n",
		"garbage",
		"ctdf-dataflow v1\narc d0.0 -> d0.0\n",
		"ctdf-dataflow v1\nnode d0 synch ins=0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		g, err := ParseText(strings.NewReader(text))
		if err != nil {
			return
		}
		out := Text(g)
		g2, err := ParseText(strings.NewReader(out))
		if err != nil {
			t.Fatalf("accepted graph does not reparse: %v\n%s", err, out)
		}
		if Text(g2) != out {
			t.Fatalf("Text not a fixed point")
		}
	})
}
