// Package dfg defines the dataflow graph intermediate representation the
// translation schemas produce and the execution engines run: operator
// nodes connected by token-carrying arcs, in the explicit-token-store
// style of paper §2.2 (switch, merge, synch trees, split-phase loads and
// stores that consume and regenerate dummy access tokens, and the loop
// entry/exit operators of §3).
package dfg

import (
	"fmt"
	"sort"
	"strings"

	"ctdf/internal/lang"
)

// Kind classifies dataflow operators.
type Kind int

// Dataflow operator kinds and their port conventions:
//
//	Start     out 0: one dummy token per arc at program start
//	End       in 0..NIns-1: fires (terminates) when all have arrived
//	Const     in 0: trigger → out 0: the constant Val
//	BinOp     in 0, 1 → out 0
//	UnOp      in 0 → out 0
//	Switch    in 0: data, in 1: control → out 0 (control≠0) / out 1
//	Merge     in 0 (any number of arcs): every token forwarded → out 0
//	Synch     in 0..NIns-1: all required → out 0: dummy
//	Load      in 0: access → out 0: value of Var, out 1: access
//	Store     in 0: value, in 1: access → out 0: access
//	LoadIdx   in 0: index, in 1: access → out 0: value of Var[index], out 1: access
//	StoreIdx  in 0: index, in 1: value, in 2: access → out 0: access
//	LoopEntry in 0: initial, in 1: back (either fires) → out 0, tag pushed/advanced
//	LoopExit  in 0 → out 0, tag popped
//	ILoad     in 0: index → out 0: value of Var[index]; the read defers at
//	          the memory until the cell is written (I-structure, §6.3)
//	IStore    in 0: index, in 1: value → no outputs; writing a full cell
//	          is a write-once violation
//	Apply     procedure call site: in 0..NIns-1: caller access tokens →
//	          out 0..NIns-1: the same tokens at return; out NIns..NOuts-1:
//	          entry arcs into the callee's Param nodes (fired with a fresh
//	          activation frame pushed on the tag)
//	Param     callee-side entry of one access token; in 0 accepts arcs from
//	          every call site (any-arrival) → out 0
//	ProcReturn callee-side exit: in 0..NIns-1 collect the callee's tokens;
//	          firing pops the activation frame and emits on the calling
//	          Apply's return ports (no static outputs)
//	Fused     optimizer-built super-operator: in 0..NIns-1 collect the
//	          external operands of a fused pure expression tree, then the
//	          whole step program (Graph.FusionOf) evaluates in one firing
//	          → out 0..NOuts-1 emit the designated step results. Strictly
//	          matched like BinOp; tag-preserving; never touches memory.
const (
	Start Kind = iota
	End
	Const
	BinOp
	UnOp
	Switch
	Merge
	Synch
	Load
	Store
	LoadIdx
	StoreIdx
	LoopEntry
	LoopExit
	ILoad
	IStore
	Apply
	Param
	ProcReturn
	Fused
)

var kindNames = map[Kind]string{
	Start: "start", End: "end", Const: "const", BinOp: "binop", UnOp: "unop",
	Switch: "switch", Merge: "merge", Synch: "synch", Load: "load",
	Store: "store", LoadIdx: "loadidx", StoreIdx: "storeidx",
	LoopEntry: "loop-entry", LoopExit: "loop-exit",
	ILoad: "iload", IStore: "istore",
	Apply: "apply", Param: "param", ProcReturn: "proc-return",
	Fused: "fused",
}

func (k Kind) String() string { return kindNames[k] }

// numOuts returns the number of output ports of each kind; Apply nodes
// carry their own count (see Node.NOuts).
func numOuts(k Kind) int {
	switch k {
	case End, IStore, ProcReturn:
		return 0
	case Switch, Load, LoadIdx:
		return 2
	default:
		return 1
	}
}

// OutPorts returns the node's output port count (Apply and Fused nodes
// carry their own; every other kind derives it from Kind).
func (n *Node) OutPorts() int {
	if n.Kind == Apply || n.Kind == Fused {
		return n.NOuts
	}
	return numOuts(n.Kind)
}

// outPorts returns the node's output port count.
func outPorts(n *Node) int { return n.OutPorts() }

// fixedIns returns the input port count for fixed-arity kinds, or -1 for
// variable arity (End, Synch).
func fixedIns(k Kind) int {
	switch k {
	case Start:
		return 0
	case Const, UnOp, Merge, LoopExit, Load, ILoad, Param:
		return 1
	case BinOp, Switch, Store, LoopEntry, LoadIdx, IStore:
		return 2
	case StoreIdx:
		return 3
	default:
		return -1
	}
}

// Node is a dataflow operator.
type Node struct {
	ID   int
	Kind Kind
	Op   lang.Op // BinOp, UnOp
	Val  int64   // Const
	Var  string  // Load/Store/LoadIdx/StoreIdx: variable or array name
	Tok  string  // access-token name this operator serves (switch/merge/synch/loop control); "" otherwise
	NIns int     // number of input ports
	// NOuts is the output port count for Apply nodes (return ports then
	// callee-entry ports); other kinds derive it from Kind.
	NOuts int

	// Stmt is the originating CFG node (provenance), or -1.
	Stmt int
}

// Operand references inside a FusedOp step: values ≥ 0 name the result
// of a prior step; values < 0 name an external input port of the fused
// node, encoded as -(port+1).
const fusedInputBias = 1

// FusedInput encodes external input port p as a step operand reference.
func FusedInput(p int) int { return -(p + fusedInputBias) }

// FusedInputPort decodes a reference produced by FusedInput (call only
// when r < 0).
func FusedInputPort(r int) int { return -r - fusedInputBias }

// FusedOp is one step of a fused operator's internal program. Only the
// pure value kinds appear: Const (consumes its trigger operand A,
// produces Val), UnOp (operand A), BinOp (operands A, B). Operands are
// encoded per FusedInput.
type FusedOp struct {
	Kind Kind
	Op   lang.Op
	Val  int64
	A, B int
}

// FusedInfo is the side-table entry describing one Fused node (the
// analogue of CallInfo for Apply): the step program evaluated per
// firing, and for each output port the step whose result it emits.
type FusedInfo struct {
	Node  int
	Steps []FusedOp
	Outs  []int
}

// String renders the node for diagnostics.
func (n *Node) String() string {
	switch n.Kind {
	case Const:
		return fmt.Sprintf("d%d: const %d", n.ID, n.Val)
	case BinOp, UnOp:
		return fmt.Sprintf("d%d: %s %s", n.ID, n.Kind, n.Op)
	case Load, Store, LoadIdx, StoreIdx, ILoad, IStore, Apply, Param, ProcReturn:
		if n.Tok != "" {
			return fmt.Sprintf("d%d: %s %s[%s]", n.ID, n.Kind, n.Var, n.Tok)
		}
		return fmt.Sprintf("d%d: %s %s", n.ID, n.Kind, n.Var)
	case Switch, Merge, Synch, LoopEntry, LoopExit:
		if n.Tok != "" {
			return fmt.Sprintf("d%d: %s[%s]", n.ID, n.Kind, n.Tok)
		}
	case Fused:
		return fmt.Sprintf("d%d: fused/%d", n.ID, n.NIns)
	}
	return fmt.Sprintf("d%d: %s", n.ID, n.Kind)
}

// Target is the head of an arc: an input port of a node.
type Target struct {
	Node int
	Port int
}

// Arc is a token-carrying edge. Dummy marks access-token (synchronization
// only) arcs — the dotted arcs of the paper's figures.
type Arc struct {
	From     int
	FromPort int
	To       int
	ToPort   int
	Dummy    bool
}

// CallInfo links one Apply node to its callee's entry/exit structure in a
// linked (separately compiled) graph.
type CallInfo struct {
	// Apply is the call-site node; Proc the callee's name.
	Apply int
	Proc  string
	// InTokens names the caller-side access tokens, one per Apply
	// input port; return port i signals the same token.
	InTokens []string
	// Params[j] is the callee's Param node for its j-th token; ParamIn[j]
	// is the Apply input port whose token becomes it. The arc feeding
	// Params[j] leaves Apply output port len(InTokens)+j.
	Params  []int
	ParamIn []int
	// Return is the callee's ProcReturn node; RetOut[j] is the Apply
	// return port signalled for the callee's j-th token (several callee
	// tokens may share one return port when a call aliases formals).
	Return int
	RetOut []int
	// Bindings maps each formal of the callee to the caller-scope name
	// bound at this site.
	Bindings map[string]string
}

// Graph is a dataflow program graph.
type Graph struct {
	Nodes []*Node
	Arcs  []Arc

	// Calls holds the call linkage of separately compiled procedures
	// (empty for inlined translations).
	Calls []CallInfo

	// Fusions holds the step programs of Fused nodes, in node-id order
	// (empty for unoptimized translations); fusionIdx maps node id →
	// Fusions index and is maintained by AddFusion.
	Fusions   []FusedInfo
	fusionIdx map[int]int

	// outs[node][port] lists arc indices leaving that port.
	outs [][][]int
	// outTargets[node][port] caches the destination list of each out
	// port (built lazily by OutTargets).
	outTargets [][][]Target
	// ins[node][port] lists arc indices entering that port.
	ins [][][]int

	StartID int
	EndID   int

	// Prog supplies the variable universe for execution (array sizes,
	// alias declarations).
	Prog *lang.Program
}

// NewGraph creates an empty dataflow graph for prog.
func NewGraph(prog *lang.Program) *Graph {
	return &Graph{Prog: prog, StartID: -1, EndID: -1}
}

// Add appends a node, assigning its ID. For variable-arity kinds (End,
// Synch) the caller must set NIns before adding arcs; fixed-arity kinds
// get NIns filled in automatically.
func (g *Graph) Add(n *Node) *Node {
	if fi := fixedIns(n.Kind); fi >= 0 {
		n.NIns = fi
	}
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	g.outs = append(g.outs, make([][]int, outPorts(n)))
	g.ins = append(g.ins, make([][]int, n.NIns))
	switch n.Kind {
	case Start:
		g.StartID = n.ID
	case End:
		g.EndID = n.ID
	}
	return n
}

// AddFusion records the step program of a Fused node.
func (g *Graph) AddFusion(fi FusedInfo) {
	if g.fusionIdx == nil {
		g.fusionIdx = map[int]int{}
	}
	g.fusionIdx[fi.Node] = len(g.Fusions)
	g.Fusions = append(g.Fusions, fi)
}

// FusionOf returns the step program of a Fused node, or nil. The index
// is built by AddFusion, so lookups are safe from concurrent engine
// workers.
func (g *Graph) FusionOf(node int) *FusedInfo {
	i, ok := g.fusionIdx[node]
	if !ok {
		return nil
	}
	return &g.Fusions[i]
}

// Connect adds an arc from (from, fromPort) to (to, toPort).
func (g *Graph) Connect(from, fromPort, to, toPort int, dummy bool) {
	idx := len(g.Arcs)
	g.Arcs = append(g.Arcs, Arc{From: from, FromPort: fromPort, To: to, ToPort: toPort, Dummy: dummy})
	g.outs[from][fromPort] = append(g.outs[from][fromPort], idx)
	g.ins[to][toPort] = append(g.ins[to][toPort], idx)
}

// OutArcs returns the arcs leaving (node, port).
func (g *Graph) OutArcs(node, port int) []Arc {
	idxs := g.outs[node][port]
	out := make([]Arc, len(idxs))
	for i, a := range idxs {
		out[i] = g.Arcs[a]
	}
	return out
}

// OutTargets returns the destinations of the arcs leaving (node, port).
// Unlike OutArcs it returns a cached slice — built on first use, shared
// across calls — so per-firing fan-out never allocates; callers must not
// mutate it or Connect new arcs afterwards.
func (g *Graph) OutTargets(node, port int) []Target {
	if g.outTargets == nil {
		g.outTargets = make([][][]Target, len(g.Nodes))
	}
	if g.outTargets[node] == nil {
		g.outTargets[node] = make([][]Target, len(g.outs[node]))
		for p, idxs := range g.outs[node] {
			ts := make([]Target, len(idxs))
			for i, a := range idxs {
				ts[i] = Target{Node: g.Arcs[a].To, Port: g.Arcs[a].ToPort}
			}
			g.outTargets[node][p] = ts
		}
	}
	return g.outTargets[node][port]
}

// WarmTargets builds the OutTargets cache for every (node, port) up
// front. The sharded machine calls it once before starting parallel
// phases: shard workers fan out tokens concurrently, and the lazy
// per-node cache build would otherwise be a data race.
func (g *Graph) WarmTargets() {
	for id := range g.Nodes {
		for p := range g.outs[id] {
			g.OutTargets(id, p)
		}
	}
}

// MaxFanOut returns the largest number of arcs leaving any single
// (node, port) — the sharded machine's stride for packing (firing,
// emission index) pairs into one ordered sequence key.
func (g *Graph) MaxFanOut() int {
	max := 0
	for id := range g.Nodes {
		for _, arcs := range g.outs[id] {
			if len(arcs) > max {
				max = len(arcs)
			}
		}
	}
	return max
}

// InDegree returns the number of arcs entering (node, port).
func (g *Graph) InDegree(node, port int) int { return len(g.ins[node][port]) }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumArcs returns the arc count.
func (g *Graph) NumArcs() int { return len(g.Arcs) }

// CountKind returns how many nodes have the given kind.
func (g *Graph) CountKind(k Kind) int {
	c := 0
	for _, n := range g.Nodes {
		if n.Kind == k {
			c++
		}
	}
	return c
}

// Stats summarizes graph size for the experiments (§3: the Schema 2 graph
// is O(E·V)).
type Stats struct {
	Nodes    int
	Arcs     int
	Switches int
	Merges   int
	Synchs   int
	Loads    int
	Stores   int
	ByKind   map[Kind]int
}

// Stats computes size statistics.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: len(g.Nodes), Arcs: len(g.Arcs), ByKind: map[Kind]int{}}
	for _, n := range g.Nodes {
		s.ByKind[n.Kind]++
	}
	s.Switches = s.ByKind[Switch]
	s.Merges = s.ByKind[Merge]
	s.Synchs = s.ByKind[Synch]
	s.Loads = s.ByKind[Load] + s.ByKind[LoadIdx] + s.ByKind[ILoad]
	s.Stores = s.ByKind[Store] + s.ByKind[StoreIdx] + s.ByKind[IStore]
	return s
}

// Validate checks structural sanity: port indices in range, every input
// port of every node fed by exactly one arc (any number for merge port 0
// and at least one for End ports), switches' control ports connected, and
// a start and end node present.
func (g *Graph) Validate() error {
	if g.StartID < 0 || g.EndID < 0 {
		return fmt.Errorf("dfg: missing start or end node")
	}
	seenArcs := map[Arc]bool{}
	for _, a := range g.Arcs {
		if a.From < 0 || a.From >= len(g.Nodes) || a.To < 0 || a.To >= len(g.Nodes) {
			return fmt.Errorf("dfg: arc %+v out of node range", a)
		}
		if a.FromPort < 0 || a.FromPort >= outPorts(g.Nodes[a.From]) {
			return fmt.Errorf("dfg: arc from %s port %d out of range", g.Nodes[a.From], a.FromPort)
		}
		if a.ToPort < 0 || a.ToPort >= g.Nodes[a.To].NIns {
			return fmt.Errorf("dfg: arc into %s port %d out of range (NIns=%d)", g.Nodes[a.To], a.ToPort, g.Nodes[a.To].NIns)
		}
		// Duplicate endpoints would deliver the same token twice (and once
		// delivered twice under one tag, the ETS matching rules of §2.2 are
		// violated); reject them statically. The dummy flag is not part of
		// the endpoint identity.
		key := Arc{From: a.From, FromPort: a.FromPort, To: a.To, ToPort: a.ToPort}
		if seenArcs[key] {
			return fmt.Errorf("dfg: duplicate arc %s port %d → %s port %d", g.Nodes[a.From], a.FromPort, g.Nodes[a.To], a.ToPort)
		}
		seenArcs[key] = true
	}
	for _, n := range g.Nodes {
		// Input arity must match the operator kind: a switch with three
		// inputs or a two-input unary op would silently drop or never match
		// operands at execution time.
		if fi := fixedIns(n.Kind); fi >= 0 && n.NIns != fi {
			return fmt.Errorf("dfg: %s has NIns=%d, kind %s requires %d", n, n.NIns, n.Kind, fi)
		}
	}
	for _, n := range g.Nodes {
		for p := 0; p < n.NIns; p++ {
			deg := g.InDegree(n.ID, p)
			switch {
			case n.Kind == Merge && p == 0:
				if deg < 2 {
					return fmt.Errorf("dfg: %s has %d input arcs; a merge needs at least 2", n, deg)
				}
			case n.Kind == End:
				if deg < 1 {
					return fmt.Errorf("dfg: end port %d unconnected", p)
				}
			case n.Kind == Param:
				if deg < 1 {
					return fmt.Errorf("dfg: %s never fed by any call site", n)
				}
			default:
				if deg != 1 {
					return fmt.Errorf("dfg: %s input port %d has %d arcs, want exactly 1", n, p, deg)
				}
			}
		}
		if n.Kind == Synch && n.NIns < 1 {
			return fmt.Errorf("dfg: %s has no inputs", n)
		}
	}
	// Memory operators must name declared storage of the right shape:
	// the engines' stores index by name without rechecking, so a load of
	// an undeclared scalar would fault inside the run instead of here.
	scalars := map[string]bool{}
	arrays := map[string]bool{}
	if g.Prog != nil {
		for _, v := range g.Prog.Vars {
			scalars[v.Name] = true
		}
		for _, a := range g.Prog.Arrays {
			arrays[a.Name] = true
		}
		// Linked graphs carry callee subgraphs whose memory nodes name
		// procedure formals (by-reference scalars, paper §5).
		for _, pr := range g.Prog.Procedures {
			for _, f := range pr.Params {
				scalars[f] = true
			}
		}
		for _, al := range g.Prog.Aliases {
			if !scalars[al.A] && !arrays[al.A] || !scalars[al.B] && !arrays[al.B] {
				return fmt.Errorf("dfg: alias %s ~ %s references an undeclared name", al.A, al.B)
			}
		}
	}
	for _, n := range g.Nodes {
		switch n.Kind {
		case Load, Store:
			if !scalars[n.Var] {
				return fmt.Errorf("dfg: %s references undeclared scalar %q", n, n.Var)
			}
		case LoadIdx, StoreIdx, ILoad, IStore:
			if !arrays[n.Var] {
				return fmt.Errorf("dfg: %s references undeclared array %q", n, n.Var)
			}
		}
	}
	return g.validateFusions()
}

// validateFusions checks the Fused side table: every Fused node has a
// step program and vice versa, step operand references are in range and
// acyclic (prior steps only), and the operand count fits the engines'
// 64-bit matching bitmask.
func (g *Graph) validateFusions() error {
	seen := map[int]bool{}
	for i := range g.Fusions {
		fi := &g.Fusions[i]
		if fi.Node < 0 || fi.Node >= len(g.Nodes) || g.Nodes[fi.Node].Kind != Fused {
			return fmt.Errorf("dfg: fusion entry %d names d%d, which is not a fused node", i, fi.Node)
		}
		if seen[fi.Node] {
			return fmt.Errorf("dfg: duplicate fusion entry for %s", g.Nodes[fi.Node])
		}
		seen[fi.Node] = true
		n := g.Nodes[fi.Node]
		if n.NIns > 64 {
			return fmt.Errorf("dfg: %s has %d inputs; strict matching is limited to 64", n, n.NIns)
		}
		if len(fi.Steps) == 0 {
			return fmt.Errorf("dfg: %s has an empty step program", n)
		}
		ref := func(step, r int) error {
			if r >= 0 {
				if r >= step {
					return fmt.Errorf("dfg: %s step %d references step %d (must be a prior step)", n, step, r)
				}
				return nil
			}
			if p := -r - fusedInputBias; p < 0 || p >= n.NIns {
				return fmt.Errorf("dfg: %s step %d references input port %d (NIns=%d)", n, step, p, n.NIns)
			}
			return nil
		}
		for s, op := range fi.Steps {
			switch op.Kind {
			case Const, UnOp:
				if err := ref(s, op.A); err != nil {
					return err
				}
			case BinOp:
				if err := ref(s, op.A); err != nil {
					return err
				}
				if err := ref(s, op.B); err != nil {
					return err
				}
			default:
				return fmt.Errorf("dfg: %s step %d has kind %s; only const/unop/binop fuse", n, s, op.Kind)
			}
		}
		if len(fi.Outs) != n.NOuts || n.NOuts < 1 {
			return fmt.Errorf("dfg: %s emits %d ports but fusion lists %d outs", n, n.NOuts, len(fi.Outs))
		}
		for p, s := range fi.Outs {
			if s < 0 || s >= len(fi.Steps) {
				return fmt.Errorf("dfg: %s out port %d names step %d of %d", n, p, s, len(fi.Steps))
			}
		}
	}
	for _, n := range g.Nodes {
		if n.Kind == Fused && !seen[n.ID] {
			return fmt.Errorf("dfg: %s has no fusion entry", n)
		}
	}
	return nil
}

// DOT renders the dataflow graph in Graphviz format; dummy (access token)
// arcs are dashed, as in the paper's figures.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph dfg {\n  node [fontname=\"monospace\"];\n")
	for _, n := range g.Nodes {
		shape := "box"
		switch n.Kind {
		case Switch:
			shape = "invtriangle"
		case Merge:
			shape = "triangle"
		case Synch:
			shape = "house"
		case Start, End:
			shape = "ellipse"
		case LoopEntry, LoopExit:
			shape = "hexagon"
		case Const:
			shape = "plaintext"
		case Fused:
			shape = "box3d"
		}
		fmt.Fprintf(&b, "  d%d [label=%q, shape=%s];\n", n.ID, n.String(), shape)
	}
	for _, a := range g.Arcs {
		style := ""
		if a.Dummy {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  d%d -> d%d [label=\"%d→%d\"%s];\n", a.From, a.To, a.FromPort, a.ToPort, style)
	}
	b.WriteString("}\n")
	return b.String()
}

// Meta is the stable, serializable description of one node that the
// observability layer (internal/obs) uses to attribute measurements:
// the node id, its operator kind, the diagnostic label, and — where the
// kind carries them — the scalar operator, the variable or array the
// operation touches, the access token it serves, and the originating
// CFG statement (provenance; -1 when synthetic). Field names are part
// of the NDJSON event-stream format documented in OBSERVABILITY.md.
type Meta struct {
	Node  int    `json:"node"`
	Kind  string `json:"kind"`
	Label string `json:"label"`
	Op    string `json:"op,omitempty"`
	Var   string `json:"var,omitempty"`
	Tok   string `json:"tok,omitempty"`
	Stmt  int    `json:"stmt"`
	Ins   int    `json:"ins"`
}

// Meta returns the per-node attribution metadata, indexed by node id.
func (g *Graph) Meta() []Meta {
	out := make([]Meta, len(g.Nodes))
	for i, n := range g.Nodes {
		m := Meta{Node: n.ID, Kind: n.Kind.String(), Label: n.String(), Var: n.Var, Tok: n.Tok, Stmt: n.Stmt, Ins: n.NIns}
		if n.Kind == BinOp || n.Kind == UnOp {
			m.Op = n.Op.String()
		}
		out[i] = m
	}
	return out
}

// SortedByKind returns node IDs sorted by kind then ID (deterministic
// iteration helper for engines and tests).
func (g *Graph) SortedByKind() []int {
	ids := make([]int, len(g.Nodes))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := g.Nodes[ids[i]], g.Nodes[ids[j]]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.ID < b.ID
	})
	return ids
}
