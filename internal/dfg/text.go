package dfg

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ctdf/internal/lang"
)

// This file defines a textual format for dataflow program graphs — the
// paper notes "there is no standard textual representation of dataflow
// programs"; this one makes the graphs storable, diffable artifacts and
// doubles as the simulator's loadable "assembly":
//
//	ctdf-dataflow v1
//	var x
//	array a 8
//	alias x z
//	node d0 start
//	node d3 binop op=+
//	node d4 load var=x stmt=2
//	arc d0.0 -> d3.0
//	arc d4.1 -> d5.1 dummy
//
// WriteText and ParseText round-trip exactly.
//
// ParseText bounds array sizes and node arity so a hostile (or fuzzed)
// graph file cannot allocate unbounded storage before Validate runs.
const (
	maxArraySize = 1 << 20
	maxNodeIns   = 4096
)

var opByName = map[string]lang.Op{}

func init() {
	for _, op := range []lang.Op{
		lang.OpAdd, lang.OpSub, lang.OpMul, lang.OpDiv, lang.OpMod,
		lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe, lang.OpEq, lang.OpNe,
		lang.OpAnd, lang.OpOr,
	} {
		opByName[op.String()] = op
	}
	// Unary operators share symbols with binary ones; qualify them.
	opByName["neg"] = lang.OpNeg
	opByName["not"] = lang.OpNot
}

func opName(k Kind, op lang.Op) string {
	if k == UnOp {
		if op == lang.OpNeg {
			return "neg"
		}
		return "not"
	}
	return op.String()
}

var kindByName = func() map[string]Kind {
	m := map[string]Kind{}
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteText serializes the graph. Linked procedure graphs (with Apply
// call sites) are not expressible in format v1.
func WriteText(w io.Writer, g *Graph) error {
	if len(g.Calls) > 0 {
		return fmt.Errorf("dfg: linked procedure graphs are not serializable in format v1")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "ctdf-dataflow v1")
	for _, v := range g.Prog.Vars {
		fmt.Fprintf(bw, "var %s\n", v.Name)
	}
	for _, a := range g.Prog.Arrays {
		fmt.Fprintf(bw, "array %s %d\n", a.Name, a.Size)
	}
	for _, al := range g.Prog.Aliases {
		fmt.Fprintf(bw, "alias %s %s\n", al.A, al.B)
	}
	for _, n := range g.Nodes {
		fmt.Fprintf(bw, "node d%d %s", n.ID, n.Kind)
		switch n.Kind {
		case Const:
			fmt.Fprintf(bw, " val=%d", n.Val)
		case BinOp, UnOp:
			fmt.Fprintf(bw, " op=%s", opName(n.Kind, n.Op))
		case Load, Store, LoadIdx, StoreIdx, ILoad, IStore:
			fmt.Fprintf(bw, " var=%s", n.Var)
		}
		if n.Tok != "" {
			fmt.Fprintf(bw, " tok=%s", n.Tok)
		}
		if n.Kind == End || n.Kind == Synch || n.Kind == Fused {
			fmt.Fprintf(bw, " ins=%d", n.NIns)
		}
		if n.Kind == Fused {
			fmt.Fprintf(bw, " outs=%d", n.NOuts)
		}
		if n.Stmt != 0 {
			fmt.Fprintf(bw, " stmt=%d", n.Stmt)
		}
		fmt.Fprintln(bw)
	}
	for i := range g.Fusions {
		fi := &g.Fusions[i]
		fmt.Fprintf(bw, "fused d%d", fi.Node)
		for _, op := range fi.Steps {
			switch op.Kind {
			case Const:
				fmt.Fprintf(bw, " const:%d:%s", op.Val, fusedRef(op.A))
			case UnOp:
				fmt.Fprintf(bw, " %s:%s", opName(UnOp, op.Op), fusedRef(op.A))
			case BinOp:
				fmt.Fprintf(bw, " %s:%s:%s", op.Op, fusedRef(op.A), fusedRef(op.B))
			}
		}
		outs := make([]string, len(fi.Outs))
		for p, s := range fi.Outs {
			outs[p] = strconv.Itoa(s)
		}
		fmt.Fprintf(bw, " out=%s\n", strings.Join(outs, ","))
	}
	for _, a := range g.Arcs {
		fmt.Fprintf(bw, "arc d%d.%d -> d%d.%d", a.From, a.FromPort, a.To, a.ToPort)
		if a.Dummy {
			fmt.Fprint(bw, " dummy")
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Text renders the graph to a string.
func Text(g *Graph) string {
	var b strings.Builder
	_ = WriteText(&b, g)
	return b.String()
}

// ParseText reads a graph serialized by WriteText.
func ParseText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("dfg: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	header, ok := next()
	if !ok || header != "ctdf-dataflow v1" {
		return nil, fail("missing 'ctdf-dataflow v1' header")
	}

	prog := &lang.Program{}
	var g *Graph
	ensureGraph := func() *Graph {
		if g == nil {
			g = NewGraph(prog)
		}
		return g
	}

	for {
		line, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "var":
			if g != nil {
				return nil, fail("declarations must precede nodes")
			}
			if len(fields) != 2 {
				return nil, fail("var takes one name")
			}
			prog.Vars = append(prog.Vars, lang.VarDecl{Name: fields[1]})
		case "array":
			if g != nil {
				return nil, fail("declarations must precede nodes")
			}
			if len(fields) != 3 {
				return nil, fail("array takes name and size")
			}
			size, err := strconv.Atoi(fields[2])
			if err != nil || size <= 0 || size > maxArraySize {
				return nil, fail("bad array size %q (must be 1..%d)", fields[2], maxArraySize)
			}
			prog.Arrays = append(prog.Arrays, lang.ArrayDecl{Name: fields[1], Size: size})
		case "alias":
			if g != nil {
				return nil, fail("declarations must precede nodes")
			}
			if len(fields) != 3 {
				return nil, fail("alias takes two names")
			}
			prog.Aliases = append(prog.Aliases, lang.AliasDecl{A: fields[1], B: fields[2]})
		case "node":
			if len(fields) < 3 {
				return nil, fail("node takes an id and a kind")
			}
			gg := ensureGraph()
			id, err := parseNodeID(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			if id != len(gg.Nodes) {
				return nil, fail("node ids must be dense and ascending (got d%d, want d%d)", id, len(gg.Nodes))
			}
			kind, ok := kindByName[fields[2]]
			if !ok {
				return nil, fail("unknown node kind %q", fields[2])
			}
			n := &Node{Kind: kind}
			insSet := false
			for _, attr := range fields[3:] {
				kv := strings.SplitN(attr, "=", 2)
				if len(kv) != 2 {
					return nil, fail("bad attribute %q", attr)
				}
				switch kv[0] {
				case "val":
					v, err := strconv.ParseInt(kv[1], 10, 64)
					if err != nil {
						return nil, fail("bad val %q", kv[1])
					}
					n.Val = v
				case "op":
					op, ok := opByName[kv[1]]
					if !ok {
						return nil, fail("unknown op %q", kv[1])
					}
					n.Op = op
				case "var":
					n.Var = kv[1]
				case "tok":
					n.Tok = kv[1]
				case "ins":
					v, err := strconv.Atoi(kv[1])
					if err != nil || v < 0 || v > maxNodeIns {
						return nil, fail("bad ins %q (must be 0..%d)", kv[1], maxNodeIns)
					}
					n.NIns = v
					insSet = true
				case "outs":
					v, err := strconv.Atoi(kv[1])
					if err != nil || v < 0 || v > maxNodeIns {
						return nil, fail("bad outs %q (must be 0..%d)", kv[1], maxNodeIns)
					}
					if kind != Fused {
						return nil, fail("outs= is only valid on fused nodes")
					}
					n.NOuts = v
				case "stmt":
					v, err := strconv.Atoi(kv[1])
					if err != nil {
						return nil, fail("bad stmt %q", kv[1])
					}
					n.Stmt = v
				default:
					return nil, fail("unknown attribute %q", kv[0])
				}
			}
			// Add silently normalizes NIns for fixed-arity kinds; an ins=
			// attribute contradicting the kind (a three-input switch, a
			// two-input unary op) is a malformed file, not a request.
			if fi := fixedIns(kind); insSet && fi >= 0 && n.NIns != fi {
				return nil, fail("kind %s has fixed arity %d, got ins=%d", kind, fi, n.NIns)
			}
			gg.Add(n)
		case "fused":
			if g == nil {
				return nil, fail("fused before any node")
			}
			if len(fields) < 4 {
				return nil, fail("fused takes a node id, steps, and out=")
			}
			id, err := parseNodeID(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			if id < 0 || id >= len(g.Nodes) || g.Nodes[id].Kind != Fused {
				return nil, fail("fused directive for d%d, which is not a declared fused node", id)
			}
			fi := FusedInfo{Node: id}
			for _, f := range fields[2 : len(fields)-1] {
				parts := strings.Split(f, ":")
				var op FusedOp
				switch {
				case parts[0] == "const" && len(parts) == 3:
					v, err := strconv.ParseInt(parts[1], 10, 64)
					if err != nil {
						return nil, fail("bad fused const %q", f)
					}
					op = FusedOp{Kind: Const, Val: v}
					if op.A, err = parseFusedRef(parts[2]); err != nil {
						return nil, fail("%v", err)
					}
				case len(parts) == 2:
					o, ok := opByName[parts[0]]
					if !ok || (o != lang.OpNeg && o != lang.OpNot) {
						return nil, fail("bad fused unop %q", f)
					}
					op = FusedOp{Kind: UnOp, Op: o}
					var err error
					if op.A, err = parseFusedRef(parts[1]); err != nil {
						return nil, fail("%v", err)
					}
				case len(parts) == 3:
					o, ok := opByName[parts[0]]
					if !ok {
						return nil, fail("bad fused binop %q", f)
					}
					op = FusedOp{Kind: BinOp, Op: o}
					var err error
					if op.A, err = parseFusedRef(parts[1]); err != nil {
						return nil, fail("%v", err)
					}
					if op.B, err = parseFusedRef(parts[2]); err != nil {
						return nil, fail("%v", err)
					}
				default:
					return nil, fail("bad fused step %q", f)
				}
				fi.Steps = append(fi.Steps, op)
				if len(fi.Steps) > maxNodeIns {
					return nil, fail("fused step program too long")
				}
			}
			last := fields[len(fields)-1]
			if !strings.HasPrefix(last, "out=") {
				return nil, fail("fused line must end with out=")
			}
			for _, s := range strings.Split(strings.TrimPrefix(last, "out="), ",") {
				v, err := strconv.Atoi(s)
				if err != nil || v < 0 {
					return nil, fail("bad fused out %q", s)
				}
				fi.Outs = append(fi.Outs, v)
			}
			g.AddFusion(fi)
		case "arc":
			if g == nil {
				return nil, fail("arc before any node")
			}
			// arc dA.p -> dB.q [dummy]
			if len(fields) < 4 || fields[2] != "->" {
				return nil, fail("bad arc line %q", line)
			}
			from, fp, err := parseEndpoint(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			to, tp, err := parseEndpoint(fields[3])
			if err != nil {
				return nil, fail("%v", err)
			}
			dummy := len(fields) == 5 && fields[4] == "dummy"
			if from < 0 || from >= len(g.Nodes) || to < 0 || to >= len(g.Nodes) {
				return nil, fail("arc references unknown node")
			}
			if fp < 0 || fp >= g.Nodes[from].OutPorts() || tp < 0 || tp >= g.Nodes[to].NIns {
				return nil, fail("arc references out-of-range port")
			}
			g.Connect(from, fp, to, tp, dummy)
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("dfg: empty graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// fusedRef renders a FusedOp operand reference: s<k> for the result of
// step k, i<p> for external input port p.
func fusedRef(r int) string {
	if r >= 0 {
		return fmt.Sprintf("s%d", r)
	}
	return fmt.Sprintf("i%d", -r-fusedInputBias)
}

func parseFusedRef(s string) (int, error) {
	if len(s) < 2 {
		return 0, fmt.Errorf("bad fused operand %q", s)
	}
	v, err := strconv.Atoi(s[1:])
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad fused operand %q", s)
	}
	switch s[0] {
	case 's':
		return v, nil
	case 'i':
		return FusedInput(v), nil
	}
	return 0, fmt.Errorf("bad fused operand %q", s)
}

func parseNodeID(s string) (int, error) {
	if !strings.HasPrefix(s, "d") {
		return 0, fmt.Errorf("bad node id %q", s)
	}
	return strconv.Atoi(s[1:])
}

func parseEndpoint(s string) (int, int, error) {
	dot := strings.LastIndex(s, ".")
	if dot < 0 {
		return 0, 0, fmt.Errorf("bad endpoint %q", s)
	}
	id, err := parseNodeID(s[:dot])
	if err != nil {
		return 0, 0, err
	}
	port, err := strconv.Atoi(s[dot+1:])
	if err != nil {
		return 0, 0, fmt.Errorf("bad port in %q", s)
	}
	return id, port, nil
}

// Listing renders a per-node "assembly" view: each node with its operands
// and destinations, in ID order — a readable machine-code-like artifact.
func Listing(g *Graph) string {
	var b strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "%-28s", n.String())
		var dests []string
		for p := 0; p < n.OutPorts(); p++ {
			for _, a := range g.OutArcs(n.ID, p) {
				d := fmt.Sprintf("d%d.%d", a.To, a.ToPort)
				if n.OutPorts() > 1 {
					d = fmt.Sprintf("%d→%s", p, d)
				}
				dests = append(dests, d)
			}
		}
		sort.Strings(dests)
		if len(dests) > 0 {
			fmt.Fprintf(&b, " => %s", strings.Join(dests, " "))
		}
		b.WriteString("\n")
	}
	return b.String()
}
