package chaos

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"ctdf"
	"ctdf/internal/workloads"
)

// The recovery sweep (`ctdf chaos -recover`) closes the fault-tolerance
// loop the detection matrix opens: for every transient fault class it
// proves the fault is not just detected but *survived* — a supervised run
// (RunConfig.Recovery) must complete with output byte-identical to the
// fault-free golden. The machine engine additionally must match the
// golden's cycle count: checkpoint resume replays the exact execution,
// so even simulated time is preserved.
//
// The gate covers the classes whose faults are guaranteed to surface as
// machine-check aborts (drop-token, dup-token, lose-mem-response,
// wedge-mailbox), the benign delay-mem-response negative control (which
// must be tolerated in one attempt), and a synthetic "deadline" row that
// aborts the first attempts with an expiring wall clock and relies on
// the supervisor's deadline growth. Corrupt-tag and misfire-value are
// excluded by design: they corrupt values/tags in ways only the oracle
// comparison can always see, so the supervisor may never get an abort to
// retry (when they do abort, the injected-fault override still retries
// them — see ROBUSTNESS.md).

// RecoverCell is one recovery-matrix entry.
type RecoverCell struct {
	Engine   string `json:"engine"`
	Schema   string `json:"schema"`
	Workload string `json:"workload"`
	// Class is the injected fault class, or "deadline" for the synthetic
	// expiring-wall-clock row (no injector).
	Class   string `json:"class"`
	Workers int    `json:"workers"`
	Sites   int64  `json:"sites,omitempty"`
	Site    int64  `json:"site,omitempty"`
	// Attempts/Checks/checkpoint counters mirror the RecoveryReport of
	// the supervised run.
	Attempts         int                 `json:"attempts"`
	Checks           []string            `json:"checks,omitempty"`
	CheckpointsTaken int                 `json:"checkpoints_taken,omitempty"`
	CheckpointUsed   *ctdf.CheckpointRef `json:"checkpoint_used,omitempty"`
	CyclesReplayed   int                 `json:"cycles_replayed,omitempty"`
	// Outcome: "recovered" (aborted, retried, byte-identical),
	// "tolerated" (benign class, one attempt, byte-identical),
	// "survived" (fault fired but the first attempt already completed
	// byte-identically), "no-sites" (skipped), "diverged", "unrecovered",
	// or "not-injected".
	Outcome string `json:"outcome"`
	OK      bool   `json:"ok"`
	Err     string `json:"err,omitempty"`
}

// RecoverMatrix is the full recovery matrix and its summary counts.
type RecoverMatrix struct {
	Seed  int64         `json:"seed"`
	Cells []RecoverCell `json:"cells"`
	// Total counts cells with eligible sites; OK counts those that ended
	// in an acceptable outcome. The recovery gate demands OK == Total.
	Total int `json:"total"`
	OK    int `json:"ok"`
	// Recovered counts cells that actually exercised a retry (aborted at
	// least once, then completed).
	Recovered int `json:"recovered"`
	Skipped   int `json:"skipped"`
	// LeakedGoroutines must be 0: every aborted and every retried run
	// tears its workers down.
	LeakedGoroutines int `json:"leaked_goroutines"`
}

// Summary renders per-class recovery counts, in stable order.
func (m *RecoverMatrix) Summary() string {
	type agg struct{ ok, tot int }
	per := map[string]*agg{}
	for _, c := range m.Cells {
		if c.Outcome == "no-sites" {
			continue
		}
		a := per[c.Class]
		if a == nil {
			a = &agg{}
			per[c.Class] = a
		}
		a.tot++
		if c.OK {
			a.ok++
		}
	}
	classes := make([]string, 0, len(per))
	for c := range per {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	out := ""
	for _, c := range classes {
		a := per[c]
		out += fmt.Sprintf("  %-20s %d/%d recovered\n", c, a.ok, a.tot)
	}
	out += fmt.Sprintf("total: %d/%d cells ok (%d via retry), %d skipped, %d leaked goroutines\n",
		m.OK, m.Total, m.Recovered, m.Skipped, m.LeakedGoroutines)
	return out
}

// recoverWorkers are the worker counts every cell runs at. The channel
// engine ignores Workers; its rows prove recovery is insensitive to the
// knob. Machine fault rows force workers=1 on the injected attempt (the
// injector requires the sequential engine) and then resume on the full
// worker count — unseeded checkpoints are worker-portable.
var recoverWorkers = []int{1, 4}

// recoverClasses filters the fault classes the recovery gate covers for
// an engine (see the package comment for why corrupt-tag and
// misfire-value are out of scope).
func recoverClasses(engName string) []ctdf.FaultClass {
	var out []ctdf.FaultClass
	for _, class := range ctdf.FaultClasses() {
		if !class.AppliesTo(engName) {
			continue
		}
		if class == ctdf.FaultCorruptTag || class == ctdf.FaultMisfireValue {
			continue
		}
		out = append(out, class)
	}
	return out
}

// recoverPolicy is the supervised-run policy every fault cell uses: a
// short checkpoint interval so even small workloads checkpoint, and
// enough attempts for the watchdog rows.
func recoverPolicy() *ctdf.RecoveryPolicy {
	return &ctdf.RecoveryPolicy{CheckpointEvery: 8, MaxAttempts: 4}
}

// RunRecover executes the recovery sweep.
func RunRecover(cfg Config) (*RecoverMatrix, error) {
	if cfg.Deadline == 0 {
		cfg.Deadline = 10 * time.Second
	}
	runtime.GC()
	baseGoroutines := runtime.NumGoroutine()

	m := &RecoverMatrix{Seed: cfg.Seed}
	tally := func(cell RecoverCell) {
		m.Cells = append(m.Cells, cell)
		if cell.Outcome == "no-sites" {
			m.Skipped++
			return
		}
		m.Total++
		if cell.OK {
			m.OK++
			if cell.Attempts > 1 {
				m.Recovered++
			}
		}
	}
	for _, wname := range workloadSet(cfg.Smoke) {
		w, err := workloads.ByName(wname)
		if err != nil {
			return nil, err
		}
		p, err := ctdf.Compile(w.Source)
		if err != nil {
			return nil, fmt.Errorf("chaos: compile %s: %w", wname, err)
		}
		oracle, err := p.Interpret(nil)
		if err != nil {
			return nil, fmt.Errorf("chaos: interpret %s: %w", wname, err)
		}
		for _, schema := range schemaSet(cfg.Smoke) {
			d, err := p.Translate(ctdf.Options{Schema: schema})
			if err != nil {
				return nil, fmt.Errorf("chaos: translate %s/%s: %w", wname, schema, err)
			}
			for _, eng := range engines {
				for _, workers := range recoverWorkers {
					golden, err := d.Run(ctdf.RunConfig{Engine: eng.eng, Workers: workers})
					if err != nil {
						return nil, fmt.Errorf("chaos: golden %s/%s/%s/w%d: %w", wname, schema, eng.name, workers, err)
					}
					if golden.Snapshot != oracle.Snapshot {
						return nil, fmt.Errorf("chaos: golden %s/%s/%s/w%d diverged from the interpreter", wname, schema, eng.name, workers)
					}
					for _, class := range recoverClasses(eng.name) {
						tally(runRecoverCell(d, eng.eng, eng.name, schema.String(), wname, class, workers, golden, cfg))
					}
					tally(runDeadlineCell(d, eng.eng, eng.name, schema.String(), wname, workers, golden))
				}
			}
		}
	}

	for i := 0; i < 50; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= baseGoroutines {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines {
		m.LeakedGoroutines = n - baseGoroutines
	}
	return m, nil
}

// recordReport copies the supervised run's recovery report into the cell.
func (c *RecoverCell) recordReport(r *ctdf.Result) {
	if r == nil || r.Recovery == nil {
		return
	}
	c.Attempts = r.Recovery.Attempts
	c.Checks = r.Recovery.Checks
	c.CheckpointsTaken = r.Recovery.CheckpointsTaken
	c.CheckpointUsed = r.Recovery.CheckpointUsed
	c.CyclesReplayed = r.Recovery.CyclesReplayed
}

// identicalTo checks byte-identity of the recovered result against the
// golden. Benign delay faults legitimately stretch simulated time, so
// cycles are compared only for non-benign machine rows.
func identicalTo(r, golden *ctdf.Result, engName string, compareCycles bool) string {
	if r.Snapshot != golden.Snapshot {
		return fmt.Sprintf("snapshot diverged:\n%s\nwant:\n%s", r.Snapshot, golden.Snapshot)
	}
	if r.Ops != golden.Ops {
		return fmt.Sprintf("ops %d, want %d", r.Ops, golden.Ops)
	}
	if engName == "machine" && compareCycles && r.Cycles != golden.Cycles {
		return fmt.Sprintf("cycles %d, want %d", r.Cycles, golden.Cycles)
	}
	return ""
}

// runRecoverCell runs one fault cell: counting pass, site selection,
// supervised faulted run, byte-identity check against the golden.
func runRecoverCell(d *ctdf.Dataflow, eng ctdf.Engine, engName, schema, wname string, class ctdf.FaultClass, workers int, golden *ctdf.Result, cfg Config) RecoverCell {
	cell := RecoverCell{Engine: engName, Schema: schema, Workload: wname, Class: string(class), Workers: workers}

	clean, err := d.Run(ctdf.RunConfig{
		Engine: eng, Workers: workers,
		Fault: &ctdf.FaultPlan{Class: class, Site: 0},
	})
	if err != nil {
		cell.Outcome = "clean-run-failed"
		cell.Err = err.Error()
		return cell
	}
	cell.Sites = clean.Fault.Sites
	if cell.Sites == 0 {
		cell.Outcome = "no-sites"
		return cell
	}
	cell.Site = ctdf.PickFaultSite(
		cellSeed(cfg.Seed, "recover", engName, schema, wname, string(class), fmt.Sprintf("w%d", workers)),
		cell.Sites)

	// The channel engine detects stuck runs only through its watchdog,
	// so every channels row needs a short deadline; machine aborts come
	// from the checks themselves. The deadline bounds idle time, not total
	// runtime: the watchdog re-arms while tokens move, so it cannot expire
	// before delivery reaches the injection site — the fault always fires
	// and the old doubled-deadline cell retries are gone.
	deadline := cfg.Deadline
	if engName == "channels" {
		deadline = 250 * time.Millisecond
	}
	r, err := d.Run(ctdf.RunConfig{
		Engine: eng, Workers: workers, Deadline: deadline,
		Fault:    &ctdf.FaultPlan{Class: class, Site: cell.Site},
		Recovery: recoverPolicy(),
	})
	cell.recordReport(r)
	if err != nil {
		cell.Outcome = "unrecovered"
		cell.Err = err.Error()
		return cell
	}
	if r.Fault == nil || !r.Fault.Injected {
		cell.Outcome = "not-injected"
		return cell
	}
	if diff := identicalTo(r, golden, engName, !class.Benign()); diff != "" {
		cell.Outcome = "diverged"
		cell.Err = diff
		return cell
	}
	switch {
	case class.Benign():
		if cell.Attempts == 1 {
			// The negative control: a delayed memory response must be
			// tolerated outright, not recovered from.
			cell.Outcome = "tolerated"
			cell.OK = true
		} else {
			cell.Outcome = "not-tolerated"
		}
	case cell.Attempts > 1:
		cell.Outcome = "recovered"
		cell.OK = true
	default:
		cell.Outcome = "survived"
		cell.OK = true
	}
	return cell
}

// runDeadlineCell runs the synthetic expiring-wall-clock row: no
// injector, a nanosecond first-attempt deadline, and a supervisor whose
// deadline growth must eventually let the run finish. On the machine
// engine the retries also resume from checkpoints, so partial progress
// survives each expiry; the channel engine restarts from scratch until
// one attempt's watchdog outlives the run.
func runDeadlineCell(d *ctdf.Dataflow, eng ctdf.Engine, engName, schema, wname string, workers int, golden *ctdf.Result) RecoverCell {
	cell := RecoverCell{Engine: engName, Schema: schema, Workload: wname, Class: "deadline", Workers: workers}
	r, err := d.Run(ctdf.RunConfig{
		Engine: eng, Workers: workers,
		Deadline: time.Nanosecond,
		Recovery: &ctdf.RecoveryPolicy{CheckpointEvery: 8, MaxAttempts: 12, DeadlineFactor: 16},
	})
	cell.recordReport(r)
	if err != nil {
		cell.Outcome = "unrecovered"
		cell.Err = err.Error()
		return cell
	}
	if diff := identicalTo(r, golden, engName, true); diff != "" {
		cell.Outcome = "diverged"
		cell.Err = diff
		return cell
	}
	if cell.Attempts > 1 {
		cell.Outcome = "recovered"
		cell.OK = true
	} else {
		// The workload outran even a nanosecond deadline (the machine
		// checks its clock on a cycle stride); nothing aborted, nothing
		// to recover.
		cell.Outcome = "survived"
		cell.OK = true
	}
	return cell
}
