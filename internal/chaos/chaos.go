// Package chaos is the fault-injection harness behind `ctdf chaos`: it
// runs a fault-class × schema × workload matrix through both execution
// engines and asserts that every injected fault is detected — by a named
// machine check (internal/machcheck), by final-state divergence from the
// sequential-interpreter oracle, or by a firing-count divergence. The
// delay-mem-response class is the built-in negative control: dataflow
// execution is determinate, so a delayed split-phase response must be
// tolerated with the oracle's exact result, proving the checks do not
// false-positive under timing perturbation.
//
// Each cell runs three executions: a counting pass (fault plan with Site
// 0) that doubles as the clean run and reports the number of eligible
// injection sites, then a faulted run at a site picked deterministically
// from the seed. Detection semantics per outcome are documented in
// ROBUSTNESS.md.
package chaos

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"time"

	"ctdf"
	"ctdf/internal/workloads"
)

// Config configures a chaos sweep.
type Config struct {
	// Smoke restricts the matrix to one schema and two workloads — the
	// fast CI gate.
	Smoke bool
	// Seed drives deterministic site selection (cells mix it with their
	// own identity, so every cell picks an independent site).
	Seed int64
	// Deadline bounds each faulted run (default 10s; wedge runs, which
	// can only end via the watchdog, use a 250ms deadline).
	Deadline time.Duration
}

// Cell is one matrix entry: a (engine, schema, workload, class) point
// with the injection site chosen and the outcome observed.
type Cell struct {
	Engine   string `json:"engine"`
	Schema   string `json:"schema"`
	Workload string `json:"workload"`
	Class    string `json:"class"`
	// Sites is the number of eligible injection sites the counting pass
	// observed; Site is the 1-based site the faulted run hit.
	Sites int64 `json:"sites"`
	Site  int64 `json:"site"`
	// Outcome classifies how the fault surfaced: a machine-check name
	// ("deadlock", "tag-violation", ...), "oracle-mismatch",
	// "ops-divergence", "firing-divergence", "tolerated" (benign classes
	// only), "no-sites" (cell skipped, not counted), or "undetected".
	Outcome string `json:"outcome"`
	// Detected reports whether the outcome counts as detection (for
	// benign classes: tolerance with the oracle's exact result).
	Detected bool `json:"detected"`
	// Err is the abort message, when the run aborted.
	Err string `json:"err,omitempty"`
}

// Matrix is the full detection matrix and its summary counts.
type Matrix struct {
	Seed  int64  `json:"seed"`
	Cells []Cell `json:"cells"`
	// Total counts cells with eligible sites; Detected counts those whose
	// fault was detected. The chaos gate demands Detected == Total.
	Total    int `json:"total"`
	Detected int `json:"detected"`
	// Skipped counts cells with no eligible injection site.
	Skipped int `json:"skipped"`
	// LeakedGoroutines is the goroutine-count delta across the sweep
	// (must be 0: every aborted channel-engine run tears down its
	// workers).
	LeakedGoroutines int `json:"leaked_goroutines"`
	// Replay holds the journal-replay reproduction rows: one per
	// machine-applicable fault class. The causal journal records the
	// fault plan alongside the provenance DAG, so replaying a
	// fault-injected journal must reproduce the run exactly — same
	// firings, and for aborted runs the same machine check at the same
	// cycle. The gate demands ReplayReproduced == ReplayTotal.
	Replay           []ReplayCell `json:"replay"`
	ReplayTotal      int          `json:"replay_total"`
	ReplayReproduced int          `json:"replay_reproduced"`
}

// ReplayCell is one journal-replay reproduction row: a fault-injected
// machine run recorded to a journal, then replayed from it.
type ReplayCell struct {
	Workload string `json:"workload"`
	Schema   string `json:"schema"`
	Class    string `json:"class"`
	Site     int64  `json:"site"`
	// Abort is the machine check that ended the recorded run ("" when
	// the faulted run survived to completion); AbortCycle its cycle.
	Abort      string `json:"abort,omitempty"`
	AbortCycle int    `json:"abort_cycle,omitempty"`
	// Outcome is "reproduced" (replay identical, abort included),
	// "diverged" (with the first diffs in Err), or "no-sites".
	Outcome    string `json:"outcome"`
	Reproduced bool   `json:"reproduced"`
	Err        string `json:"err,omitempty"`
}

// Summary renders per-class detection counts, in stable order.
func (m *Matrix) Summary() string {
	type agg struct{ det, tot int }
	per := map[string]*agg{}
	for _, c := range m.Cells {
		if c.Outcome == "no-sites" {
			continue
		}
		a := per[c.Class]
		if a == nil {
			a = &agg{}
			per[c.Class] = a
		}
		a.tot++
		if c.Detected {
			a.det++
		}
	}
	classes := make([]string, 0, len(per))
	for c := range per {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	out := ""
	for _, c := range classes {
		a := per[c]
		out += fmt.Sprintf("  %-20s %d/%d detected\n", c, a.det, a.tot)
	}
	out += fmt.Sprintf("total: %d/%d detected, %d cells skipped (no eligible sites), %d leaked goroutines\n",
		m.Detected, m.Total, m.Skipped, m.LeakedGoroutines)
	if m.ReplayTotal > 0 {
		out += fmt.Sprintf("replay: %d/%d fault journals reproduced exactly\n",
			m.ReplayReproduced, m.ReplayTotal)
	}
	return out
}

// engines maps engine names to ctdf engine selectors.
var engines = []struct {
	name string
	eng  ctdf.Engine
}{
	{"machine", ctdf.EngineMachine},
	{"channels", ctdf.EngineChannels},
}

func schemaSet(smoke bool) []ctdf.Schema {
	if smoke {
		return []ctdf.Schema{ctdf.Schema2Opt}
	}
	return []ctdf.Schema{ctdf.Schema1, ctdf.Schema2, ctdf.Schema2Opt, ctdf.Schema3, ctdf.Schema3Opt}
}

func workloadSet(smoke bool) []string {
	if smoke {
		return []string{"fib-iterative", "array-sum"}
	}
	return []string{"fib-iterative", "array-sum", "gcd", "nested-loops", "bubble-sort"}
}

// cellSeed mixes the sweep seed with the cell identity so each cell picks
// an independent, reproducible site.
func cellSeed(seed int64, parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return seed + int64(h.Sum64()%1_000_003)
}

// Run executes the sweep.
func Run(cfg Config) (*Matrix, error) {
	if cfg.Deadline == 0 {
		cfg.Deadline = 10 * time.Second
	}
	runtime.GC()
	baseGoroutines := runtime.NumGoroutine()

	m := &Matrix{Seed: cfg.Seed}
	for _, wname := range workloadSet(cfg.Smoke) {
		w, err := workloads.ByName(wname)
		if err != nil {
			return nil, err
		}
		p, err := ctdf.Compile(w.Source)
		if err != nil {
			return nil, fmt.Errorf("chaos: compile %s: %w", wname, err)
		}
		oracle, err := p.Interpret(nil)
		if err != nil {
			return nil, fmt.Errorf("chaos: interpret %s: %w", wname, err)
		}
		for _, schema := range schemaSet(cfg.Smoke) {
			d, err := p.Translate(ctdf.Options{Schema: schema})
			if err != nil {
				return nil, fmt.Errorf("chaos: translate %s/%s: %w", wname, schema, err)
			}
			for _, eng := range engines {
				for _, class := range ctdf.FaultClasses() {
					if !class.AppliesTo(eng.name) {
						continue
					}
					cell := runCell(d, eng.eng, eng.name, schema.String(), wname, class, oracle.Snapshot, cfg)
					m.Cells = append(m.Cells, cell)
					if cell.Outcome == "no-sites" {
						m.Skipped++
						continue
					}
					m.Total++
					if cell.Detected {
						m.Detected++
					}
				}
			}
		}
	}

	// Journal-replay reproduction rows: one per machine-applicable fault
	// class on a fixed workload/schema point. These runs use only the
	// machine engine and so cannot leak goroutines.
	if err := runReplaySweep(m, cfg); err != nil {
		return nil, err
	}

	// The whole sweep must leave no goroutines behind: every aborted
	// channel-engine run tears its workers down before returning.
	for i := 0; i < 50; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= baseGoroutines {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines {
		m.LeakedGoroutines = n - baseGoroutines
	}
	return m, nil
}

// runCell executes one matrix cell: counting pass (the clean run), site
// selection, faulted run, classification.
func runCell(d *ctdf.Dataflow, eng ctdf.Engine, engName, schema, wname string, class ctdf.FaultClass, oracleSnap string, cfg Config) Cell {
	cell := Cell{Engine: engName, Schema: schema, Workload: wname, Class: string(class)}

	clean, err := d.Run(ctdf.RunConfig{
		Engine: eng,
		Fault:  &ctdf.FaultPlan{Class: class, Site: 0},
		Obs:    &ctdf.ObsOptions{},
	})
	if err != nil {
		cell.Outcome = "clean-run-failed"
		cell.Err = err.Error()
		return cell
	}
	if clean.Snapshot != oracleSnap {
		// The clean run is the per-cell oracle; it must itself agree with
		// the sequential interpreter before any fault is injected.
		cell.Outcome = "clean-run-diverged"
		return cell
	}
	cell.Sites = clean.Fault.Sites
	if cell.Sites == 0 {
		cell.Outcome = "no-sites"
		return cell
	}
	cell.Site = ctdf.PickFaultSite(cellSeed(cfg.Seed, engName, schema, wname, string(class)), cell.Sites)

	deadline := cfg.Deadline
	if class == ctdf.FaultWedgeMailbox {
		// A wedged run can only end via the watchdog, so it burns at least
		// one full idle window; keep it short. The watchdog re-arms while
		// tokens still move, so the short window cannot expire before
		// delivery reaches the injection site.
		deadline = 250 * time.Millisecond
	}
	faulted, err := d.Run(ctdf.RunConfig{
		Engine:   eng,
		Deadline: deadline,
		Fault:    &ctdf.FaultPlan{Class: class, Site: cell.Site},
		Obs:      &ctdf.ObsOptions{},
	})
	if err != nil {
		cell.Err = err.Error()
		if name, ok := ctdf.CheckName(err); ok {
			cell.Outcome = name
			// A benign fault must be tolerated, not aborted.
			cell.Detected = !class.Benign()
		} else {
			cell.Outcome = "untyped-error"
		}
		return cell
	}
	if faulted.Fault == nil || !faulted.Fault.Injected {
		cell.Outcome = "not-injected"
		return cell
	}
	switch {
	case class.Benign():
		if faulted.Snapshot == clean.Snapshot && faulted.Ops == clean.Ops &&
			firingsEqual(clean, faulted) {
			cell.Outcome = "tolerated"
			cell.Detected = true
		} else {
			cell.Outcome = "determinacy-violation"
		}
	case faulted.Snapshot != clean.Snapshot:
		cell.Outcome = "oracle-mismatch"
		cell.Detected = true
	case faulted.Ops != clean.Ops:
		cell.Outcome = "ops-divergence"
		cell.Detected = true
	case !firingsEqual(clean, faulted):
		// Dataflow determinacy fixes every node's firing count, so the
		// per-node profile is a finer oracle than the final store: a
		// flipped branch can restore the store yet fire different nodes.
		cell.Outcome = "firing-divergence"
		cell.Detected = true
	default:
		cell.Outcome = "undetected"
	}
	return cell
}

// runReplaySweep appends one journal-replay reproduction row per
// machine-applicable fault class: a faulted machine run is recorded to a
// causal journal (which captures the fault plan alongside the provenance
// DAG), then replayed from it. The replay diff covers the abort check and
// abort cycle, so a reproduced row means the same machine check fired at
// the same cycle — the journal is a faithful crash recording.
func runReplaySweep(m *Matrix, cfg Config) error {
	const wname = "fib-iterative"
	schema := ctdf.Schema2Opt
	w, err := workloads.ByName(wname)
	if err != nil {
		return err
	}
	p, err := ctdf.Compile(w.Source)
	if err != nil {
		return fmt.Errorf("chaos: compile %s: %w", wname, err)
	}
	d, err := p.Translate(ctdf.Options{Schema: schema})
	if err != nil {
		return fmt.Errorf("chaos: translate %s/%s: %w", wname, schema, err)
	}
	for _, class := range ctdf.FaultClasses() {
		if !class.AppliesTo("machine") {
			continue
		}
		rc := runReplayCell(d, wname, schema.String(), class, cfg)
		m.Replay = append(m.Replay, rc)
		if rc.Outcome == "no-sites" {
			continue
		}
		m.ReplayTotal++
		if rc.Reproduced {
			m.ReplayReproduced++
		}
	}
	return nil
}

// runReplayCell records one fault-injected machine run to a journal and
// replays it.
func runReplayCell(d *ctdf.Dataflow, wname, schema string, class ctdf.FaultClass, cfg Config) ReplayCell {
	rc := ReplayCell{Workload: wname, Schema: schema, Class: string(class)}

	clean, err := d.Run(ctdf.RunConfig{
		Engine: ctdf.EngineMachine,
		Fault:  &ctdf.FaultPlan{Class: class, Site: 0},
	})
	if err != nil {
		rc.Outcome = "clean-run-failed"
		rc.Err = err.Error()
		return rc
	}
	if clean.Fault.Sites == 0 {
		rc.Outcome = "no-sites"
		return rc
	}
	rc.Site = ctdf.PickFaultSite(cellSeed(cfg.Seed, "replay", schema, wname, string(class)), clean.Fault.Sites)

	// The faulted run may abort on a machine check; the journal is still
	// populated (the machine returns its partial outcome on abort), so the
	// run error itself is not a row failure — the replay diff decides.
	r, _ := d.Run(ctdf.RunConfig{
		Engine: ctdf.EngineMachine,
		Fault:  &ctdf.FaultPlan{Class: class, Site: rc.Site},
		Obs:    &ctdf.ObsOptions{Journal: true, Label: schema},
	})
	if r == nil || r.Journal == nil {
		rc.Outcome = "no-journal"
		return rc
	}
	rc.Abort, rc.AbortCycle = r.Journal.Abort()
	report, diverged, err := r.Journal.Replay()
	if err != nil {
		rc.Outcome = "replay-failed"
		rc.Err = err.Error()
		return rc
	}
	if diverged {
		rc.Outcome = "diverged"
		rc.Err = report
		return rc
	}
	rc.Outcome = "reproduced"
	rc.Reproduced = true
	return rc
}

// firingsEqual compares the per-node firing-count vectors of two observed
// runs.
func firingsEqual(a, b *ctdf.Result) bool {
	if a.Obs == nil || b.Obs == nil {
		return true
	}
	af, bf := a.Obs.NodeFirings(), b.Obs.NodeFirings()
	if len(af) != len(bf) {
		return false
	}
	for i := range af {
		if af[i] != bf[i] {
			return false
		}
	}
	return true
}
