package chaos

import (
	"encoding/json"
	"testing"
	"time"
)

func TestSmokeMatrixFullyDetected(t *testing.T) {
	m, err := Run(Config{Smoke: true, Seed: 1, Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if m.Total == 0 {
		t.Fatal("smoke matrix is empty")
	}
	if m.Detected != m.Total {
		for _, c := range m.Cells {
			if !c.Detected && c.Outcome != "no-sites" {
				t.Errorf("undetected: %s/%s/%s/%s site %d/%d: %s %s",
					c.Engine, c.Schema, c.Workload, c.Class, c.Site, c.Sites, c.Outcome, c.Err)
			}
		}
		t.Fatalf("detection %d/%d", m.Detected, m.Total)
	}
	if m.LeakedGoroutines != 0 {
		t.Errorf("%d goroutines leaked", m.LeakedGoroutines)
	}
	// Both engines and every applicable class must appear in the matrix.
	seen := map[string]bool{}
	for _, c := range m.Cells {
		seen[c.Engine] = true
		seen[c.Class] = true
	}
	for _, want := range []string{
		"machine", "channels",
		"drop-token", "dup-token", "corrupt-tag",
		"lose-mem-response", "delay-mem-response", "misfire-value", "wedge-mailbox",
	} {
		if !seen[want] {
			t.Errorf("matrix has no %q cells", want)
		}
	}
	// The negative control must be exercised as tolerance, not abort.
	tolerated := 0
	for _, c := range m.Cells {
		if c.Class == "delay-mem-response" && c.Outcome == "tolerated" {
			tolerated++
		}
	}
	if tolerated == 0 {
		t.Error("delay-mem-response negative control never ran")
	}
	if _, err := json.Marshal(m); err != nil {
		t.Errorf("matrix not JSON-serializable: %v", err)
	}
	// Every machine-applicable fault class must have a journal-replay row,
	// and replaying the fault-injected journal must reproduce the run
	// exactly — same firings, same machine check at the same cycle.
	if m.ReplayTotal == 0 {
		t.Fatal("no journal-replay rows")
	}
	if m.ReplayReproduced != m.ReplayTotal {
		for _, r := range m.Replay {
			if !r.Reproduced && r.Outcome != "no-sites" {
				t.Errorf("not reproduced: %s/%s/%s site %d: %s %s",
					r.Workload, r.Schema, r.Class, r.Site, r.Outcome, r.Err)
			}
		}
		t.Fatalf("replay reproduction %d/%d", m.ReplayReproduced, m.ReplayTotal)
	}
	aborted := 0
	for _, r := range m.Replay {
		if r.Abort != "" {
			if r.AbortCycle <= 0 {
				t.Errorf("replay row %s aborted on %s with non-positive cycle %d",
					r.Class, r.Abort, r.AbortCycle)
			}
			aborted++
		}
	}
	if aborted == 0 {
		t.Error("no replay row reproduced a machine-check abort")
	}
}

func TestMatrixIsDeterministic(t *testing.T) {
	a, err := Run(Config{Smoke: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Smoke: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("same seed produced %d vs %d cells", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		// Site selection (seed-driven) and detection are deterministic in
		// both engines. In the cycle-driven machine the whole cell is: the
		// Nth eligible event is always the same event. In the channel
		// engine the site *index* is deterministic but its binding to a
		// concrete delivery depends on goroutine scheduling, so the
		// detecting check (and its diagnostics) may differ run to run.
		if ca.Engine == "machine" {
			ja, _ := json.Marshal(ca)
			jb, _ := json.Marshal(cb)
			if string(ja) != string(jb) {
				t.Errorf("machine cell %d not reproducible:\n%s\n%s", i, ja, jb)
			}
			continue
		}
		if ca.Sites != cb.Sites || ca.Site != cb.Site || ca.Class != cb.Class ||
			ca.Workload != cb.Workload || ca.Detected != cb.Detected {
			t.Errorf("channels cell %d diverged beyond diagnostics:\n%+v\n%+v", i, ca, cb)
		}
	}
	c, err := Run(Config{Smoke: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for i := range a.Cells {
		if a.Cells[i].Site != c.Cells[i].Site {
			differ = true
		}
	}
	if !differ {
		t.Error("different seeds picked identical sites everywhere")
	}
}
