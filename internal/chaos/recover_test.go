package chaos

import (
	"encoding/json"
	"testing"
	"time"
)

// TestSmokeRecoverMatrixFullyRecovered is the recovery gate's own test:
// every transient fault class must be survived byte-identically in both
// engines at every worker count.
func TestSmokeRecoverMatrixFullyRecovered(t *testing.T) {
	m, err := RunRecover(Config{Smoke: true, Seed: 1, Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if m.Total == 0 {
		t.Fatal("recovery matrix is empty")
	}
	if m.OK != m.Total {
		for _, c := range m.Cells {
			if !c.OK && c.Outcome != "no-sites" {
				t.Errorf("not recovered: %s/%s/%s/%s w%d site %d/%d: %s %s",
					c.Engine, c.Schema, c.Workload, c.Class, c.Workers, c.Site, c.Sites, c.Outcome, c.Err)
			}
		}
		t.Fatalf("recovery %d/%d", m.OK, m.Total)
	}
	if m.Recovered == 0 {
		t.Fatal("no cell exercised an actual retry")
	}
	if m.LeakedGoroutines != 0 {
		t.Errorf("%d goroutines leaked", m.LeakedGoroutines)
	}

	// Both engines, both worker counts, and every gated class must appear.
	engines := map[string]bool{}
	workers := map[int]bool{}
	classes := map[string]bool{}
	resumed := 0
	for _, c := range m.Cells {
		if c.Outcome == "no-sites" {
			continue
		}
		engines[c.Engine] = true
		workers[c.Workers] = true
		classes[c.Class] = true
		if c.CheckpointUsed != nil {
			resumed++
		}
	}
	for _, want := range []string{"machine", "channels"} {
		if !engines[want] {
			t.Errorf("matrix has no %q cells", want)
		}
	}
	for _, want := range []int{1, 4} {
		if !workers[want] {
			t.Errorf("matrix has no workers=%d cells", want)
		}
	}
	for _, want := range []string{
		"drop-token", "dup-token", "lose-mem-response",
		"delay-mem-response", "wedge-mailbox", "deadline",
	} {
		if !classes[want] {
			t.Errorf("matrix has no %q cells", want)
		}
	}
	if resumed == 0 {
		t.Error("no cell resumed from a checkpoint")
	}

	// The negative control must be tolerated outright, never retried.
	for _, c := range m.Cells {
		if c.Class == "delay-mem-response" && c.Outcome != "tolerated" && c.Outcome != "no-sites" {
			t.Errorf("benign cell %s/%s w%d: outcome %s, want tolerated", c.Schema, c.Workload, c.Workers, c.Outcome)
		}
	}
	if _, err := json.Marshal(m); err != nil {
		t.Errorf("matrix not JSON-serializable: %v", err)
	}
}
