package opt

import (
	"ctdf/internal/analysis"
	"ctdf/internal/dfg"
	"ctdf/internal/translate"
)

// sinkSwitches removes switch/merge identity pairs — the Figure 9
// rewrite. A candidate switch must satisfy two independent conditions:
//
// Legality (semantic): the recomputed §4 minimal placement does not
// need a switch for (fork, token). By Theorem 1 the token's value is
// not live across the conditional in a way that requires routing, so
// steering it per-arm is pure overhead.
//
// Pattern (structural): both switch arms are wired, via exactly one arc
// each, into port 0 of the same 2-input merge for the same token, and
// the switch's data and control ports each have exactly one feeder.
// Then every token entering the switch exits the merge unchanged — the
// pair composes to the identity — so the data source is wired straight
// to the merge's consumers and switch, merge, and the control arc are
// deleted. Loop-circulation switches never match: their false arm feeds
// a loop-exit, not a merge.
//
// The pattern guarantees pair-disjointness (each removed merge has both
// in-arcs consumed by its removed switch), so a whole round batches into
// one rebuild; the inner fixpoint then collapses nested diamonds
// inside-out, since deleting an inner pair turns the outer pair's arms
// into single arcs.
func sinkSwitches(g *dfg.Graph, minimal *analysis.Placement, cert *translate.OptCertificate, count, total *int) (*dfg.Graph, error) {
	for {
		e := newEditor(g)
		n := 0
		for _, sw := range g.Nodes {
			if sw.Kind != dfg.Switch || sw.Stmt < 0 || sw.Tok == "" {
				continue
			}
			if minimal.NeedsSwitch(sw.Stmt, sw.Tok) {
				continue // required by Theorem 1: removing it would break determinacy
			}
			o0, o1 := e.outs[sw.ID][0], e.outs[sw.ID][1]
			if len(o0) != 1 || len(o1) != 1 {
				continue
			}
			a0, a1 := g.Arcs[o0[0]], g.Arcs[o1[0]]
			if a0.To != a1.To || a0.ToPort != 0 || a1.ToPort != 0 {
				continue
			}
			m := g.Nodes[a0.To]
			if m.Kind != dfg.Merge || m.Tok != sw.Tok || len(e.ins[m.ID][0]) != 2 {
				continue
			}
			din, cin := e.ins[sw.ID][0], e.ins[sw.ID][1]
			if len(din) != 1 || len(cin) != 1 {
				continue
			}
			data := g.Arcs[din[0]]
			ok := true
			for _, mi := range e.outs[m.ID][0] {
				ma := g.Arcs[mi]
				if e.hasArc(data.From, data.FromPort, ma.To, ma.ToPort) {
					ok = false // would duplicate an existing arc; leave the pair
					break
				}
			}
			if !ok {
				continue
			}
			for _, mi := range e.outs[m.ID][0] {
				ma := g.Arcs[mi]
				e.added = append(e.added, dfg.Arc{From: data.From, FromPort: data.FromPort, To: ma.To, ToPort: ma.ToPort, Dummy: ma.Dummy})
				e.deadA[mi] = true
			}
			e.deadA[din[0]] = true
			e.deadA[cin[0]] = true
			e.deadA[o0[0]] = true
			e.deadA[o1[0]] = true
			e.deadN[sw.ID] = true
			e.deadN[m.ID] = true
			cert.RemovedSwitches[translate.StmtTok{Stmt: sw.Stmt, Tok: sw.Tok}]++
			cert.RemovedMerges[translate.StmtTok{Stmt: m.Stmt, Tok: m.Tok}]++
			n++
		}
		if n == 0 {
			return g, nil
		}
		ng, err := e.rebuild()
		if err != nil {
			return nil, err
		}
		g = ng
		*count += n
		*total += n
	}
}
