// Package opt is the post-translation graph optimizer: a pass pipeline
// that rewrites dataflow program graphs produced by internal/translate
// without changing what they compute. The paper's §4 derives switch
// placement statically, before graph construction; this package is the
// complementary direction — Figure 9's observation ("the switch and
// merge operators for y are unnecessary") generalized into graph-level
// rewrites that run on any schema's output:
//
//   - sink-switches: a switch whose both arms feed one merge, and that
//     the independently recomputed §4 minimal placement marks
//     unnecessary, is an identity together with that merge; the pair is
//     removed and the token line runs straight through (Figure 9).
//   - collapse-merges: a merge whose only consumer is another merge of
//     the same token forwards every token into it; the chain flattens
//     into the downstream merge (merge is associative), so nested joins
//     cost one merge traversal instead of two.
//   - fuse-operators: maximal single-consumer trees of pure value
//     operators (const, binop, unop) collapse into one Fused
//     super-operator that evaluates the whole tree in a single firing —
//     interior tokens stop moving through the machine entirely and the
//     tree's critical path drops to one cycle.
//   - eliminate-dead: pure value nodes whose outputs nobody consumes
//     (typically predicate chains orphaned by sink-switches) are
//     deleted, provided no producer's access-token port is left
//     unconsumed.
//
// Every structural claim the pipeline makes about switch and merge
// removals is recorded in a translate.OptCertificate; internal/vet
// validates the claims against its own recomputed placement rather than
// trusting them, so the optimized graph still passes the full
// translation-validation suite. Determinacy is preserved pass by pass:
// sinking removes an identity pair (the merge's outgoing guard is
// exactly the guard the switch's data input carried), flattening
// preserves the token multiset a merge forwards, fusion only touches
// single-consumer pure values (no other node observes the interior
// tokens), and dead elimination deletes tokens that were provably
// discarded anyway.
package opt

import (
	"fmt"

	"ctdf/internal/dfg"
	"ctdf/internal/translate"
	"ctdf/internal/vet"
)

// maxRounds bounds the pipeline fixpoint; each round must remove at
// least one node to continue, so the true bound is the node count.
const maxRounds = 1024

// Run optimizes res.Graph in place: the rewritten graph replaces
// res.Graph, and the certificate recording what was removed is stored in
// res.Opt and returned. Graphs without translation metadata (loaded from
// text) still get the metadata-free passes (fusion, merge collapsing,
// dead elimination); switch sinking needs the CFG to recompute the
// minimal placement and is skipped without it.
func Run(res *translate.Result) (*translate.OptCertificate, error) {
	if res == nil || res.Graph == nil {
		return nil, fmt.Errorf("opt: no graph to optimize")
	}
	if len(res.Graph.Calls) > 0 {
		return nil, fmt.Errorf("opt: linked procedure graphs are not optimizable (call linkage pins node ids)")
	}
	cert := &translate.OptCertificate{
		RemovedSwitches: map[translate.StmtTok]int{},
		RemovedMerges:   map[translate.StmtTok]int{},
	}

	// The sinking work-list criterion is exactly the predicate behind
	// vet's "redundant switch" warning: the recomputed §4 placement has
	// no entry for the (fork, token) slot.
	minimal, err := vet.MinimalPlacement(res)
	if err != nil {
		minimal = nil // metadata-free graph: skip the placement-driven pass
	}

	g := res.Graph
	counts := [4]int{}
	for round := 0; ; round++ {
		if round >= maxRounds {
			return nil, fmt.Errorf("opt: pipeline did not reach a fixpoint after %d rounds", maxRounds)
		}
		n := 0
		if minimal != nil {
			g, err = sinkSwitches(g, minimal, cert, &counts[0], &n)
			if err != nil {
				return nil, err
			}
		}
		if g, err = collapseMerges(g, cert, &counts[1], &n); err != nil {
			return nil, err
		}
		if g, err = fuseOperators(g, &counts[2], &n); err != nil {
			return nil, err
		}
		if g, err = eliminateDead(g, res, &counts[3], &n); err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("opt: optimized graph is invalid: %w", err)
	}
	cert.Passes = []translate.PassCount{
		{Name: "sink-switches", Rewrites: counts[0]},
		{Name: "collapse-merges", Rewrites: counts[1]},
		{Name: "fuse-operators", Rewrites: counts[2]},
		{Name: "eliminate-dead", Rewrites: counts[3]},
	}
	res.Graph = g
	res.Opt = cert
	return cert, nil
}

// editor accumulates one batch of rewrites against a graph and rebuilds
// a fresh graph with dense node ids. dfg.Graph is append-only by design
// (its arc indices and target caches assume immutability), so passes
// mark deletions and additions here and the rebuild re-adds everything
// that survives, in original order — keeping pass output deterministic.
type editor struct {
	g        *dfg.Graph
	deadN    []bool
	deadA    []bool
	added    []dfg.Arc       // endpoints in old-id space (new nodes at len(g.Nodes)+i)
	newNodes []*dfg.Node     // appended nodes, ids len(g.Nodes)+i
	newFus   []dfg.FusedInfo // fusion entries for appended nodes, old-id space

	// outs[node][port] and ins[node][port] list arc indices.
	outs [][][]int
	ins  [][][]int
}

func newEditor(g *dfg.Graph) *editor {
	e := &editor{
		g:     g,
		deadN: make([]bool, len(g.Nodes)),
		deadA: make([]bool, len(g.Arcs)),
		outs:  make([][][]int, len(g.Nodes)),
		ins:   make([][][]int, len(g.Nodes)),
	}
	for i, n := range g.Nodes {
		e.outs[i] = make([][]int, n.OutPorts())
		e.ins[i] = make([][]int, n.NIns)
	}
	for ai, a := range g.Arcs {
		e.outs[a.From][a.FromPort] = append(e.outs[a.From][a.FromPort], ai)
		e.ins[a.To][a.ToPort] = append(e.ins[a.To][a.ToPort], ai)
	}
	return e
}

// addNode appends a node in old-id space and returns its provisional id.
func (e *editor) addNode(n *dfg.Node) int {
	id := len(e.g.Nodes) + len(e.newNodes)
	e.newNodes = append(e.newNodes, n)
	return id
}

// hasArc reports whether an arc with these endpoints survives the edits
// (or was added by them) — used to refuse rewrites that would create a
// duplicate arc.
func (e *editor) hasArc(from, fromPort, to, toPort int) bool {
	if from < len(e.outs) {
		for _, ai := range e.outs[from][fromPort] {
			if !e.deadA[ai] {
				a := e.g.Arcs[ai]
				if a.To == to && a.ToPort == toPort {
					return true
				}
			}
		}
	}
	for _, a := range e.added {
		if a.From == from && a.FromPort == fromPort && a.To == to && a.ToPort == toPort {
			return true
		}
	}
	return false
}

// rebuild materializes the edited graph. Surviving nodes keep their
// relative order; appended nodes follow. An arc left attached to a
// deleted node is a pass bug and fails loudly.
func (e *editor) rebuild() (*dfg.Graph, error) {
	g := e.g
	ng := dfg.NewGraph(g.Prog)
	remap := make([]int, len(g.Nodes)+len(e.newNodes))
	for i, n := range g.Nodes {
		if e.deadN[i] {
			remap[i] = -1
			continue
		}
		cp := *n
		ng.Add(&cp)
		remap[i] = cp.ID
	}
	for i, n := range e.newNodes {
		cp := *n
		ng.Add(&cp)
		remap[len(g.Nodes)+i] = cp.ID
	}
	connect := func(a dfg.Arc) error {
		from, to := remap[a.From], remap[a.To]
		if from < 0 || to < 0 {
			return fmt.Errorf("opt: internal error: arc d%d.%d→d%d.%d survives a deleted endpoint", a.From, a.FromPort, a.To, a.ToPort)
		}
		ng.Connect(from, a.FromPort, to, a.ToPort, a.Dummy)
		return nil
	}
	for ai, a := range g.Arcs {
		if e.deadA[ai] {
			continue
		}
		if err := connect(a); err != nil {
			return nil, err
		}
	}
	for _, a := range e.added {
		if err := connect(a); err != nil {
			return nil, err
		}
	}
	for i := range g.Fusions {
		fi := g.Fusions[i]
		if remap[fi.Node] < 0 {
			continue
		}
		fi.Node = remap[fi.Node]
		fi.Steps = append([]dfg.FusedOp(nil), fi.Steps...)
		fi.Outs = append([]int(nil), fi.Outs...)
		ng.AddFusion(fi)
	}
	for _, fi := range e.newFus {
		if remap[fi.Node] < 0 {
			continue
		}
		fi.Node = remap[fi.Node]
		ng.AddFusion(fi)
	}
	return ng, nil
}
