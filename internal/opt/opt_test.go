package opt

import (
	"testing"
	"time"

	"ctdf/internal/cfg"
	"ctdf/internal/chanexec"
	"ctdf/internal/dfg"
	"ctdf/internal/interp"
	"ctdf/internal/machine"
	"ctdf/internal/translate"
	"ctdf/internal/vet"
	"ctdf/internal/workloads"
)

var allSchemas = []translate.Schema{
	translate.Schema1, translate.Schema2, translate.Schema2Opt,
	translate.Schema3, translate.Schema3Opt,
}

// TestOptimizedSuiteAgreesAcrossEngines is the package's acceptance
// gate: every committed workload under every schema, optimized, must
// (1) vet with zero diagnostics, certificate included, (2) produce the
// same final store as the unoptimized graph on the machine engine and
// as sequential interpretation, and (3) agree between the machine and
// channel engines on both store and firing count.
func TestOptimizedSuiteAgreesAcrossEngines(t *testing.T) {
	cells := 0
	for _, w := range workloads.All() {
		g, err := cfg.Build(w.Parse())
		if err != nil {
			continue // procedure workloads need linked translation
		}
		want, err := interp.Run(g, interp.Options{})
		if err != nil {
			t.Fatalf("%s: interp: %v", w.Name, err)
		}
		for _, s := range allSchemas {
			res, err := translate.Translate(g, translate.Options{Schema: s})
			if err != nil {
				t.Fatalf("%s/%v: translate: %v", w.Name, s, err)
			}
			base, err := machine.Run(res.Graph, machine.Config{})
			if err != nil {
				t.Fatalf("%s/%v: baseline run: %v", w.Name, s, err)
			}
			if _, err := Run(res); err != nil {
				t.Fatalf("%s/%v: optimize: %v", w.Name, s, err)
			}
			if rep := vet.Run(res.Graph, res); !rep.Clean() {
				t.Errorf("%s/%v: optimized graph not vet-clean:\n%s", w.Name, s, rep)
				continue
			}
			mo, err := machine.Run(res.Graph, machine.Config{})
			if err != nil {
				t.Fatalf("%s/%v: optimized machine run: %v", w.Name, s, err)
			}
			co, err := chanexec.Run(res.Graph, chanexec.Config{Deadline: 10 * time.Second})
			if err != nil {
				t.Fatalf("%s/%v: optimized chanexec run: %v", w.Name, s, err)
			}
			if got, want := mo.Store.Snapshot(), base.Store.Snapshot(); got != want {
				t.Errorf("%s/%v: optimization changed the machine result\n got %s\nwant %s", w.Name, s, got, want)
			}
			if got := translate.FinalSnapshot(res, mo.Store, mo.EndValues); got != want.Store.Snapshot() {
				t.Errorf("%s/%v: optimized result disagrees with interpretation\n got %s\nwant %s", w.Name, s, got, want.Store.Snapshot())
			}
			if mo.Store.Snapshot() != co.Store.Snapshot() || int64(mo.Stats.Ops) != co.Ops {
				t.Errorf("%s/%v: engines disagree on optimized graph: machine %s (%d ops) vs channels %s (%d ops)",
					w.Name, s, mo.Store.Snapshot(), mo.Stats.Ops, co.Store.Snapshot(), co.Ops)
			}
			cells++
		}
	}
	if cells < 100 {
		t.Fatalf("only %d workload/schema cells optimized; suite lost coverage", cells)
	}
}

// TestFigure9SwitchPairRemoved reproduces the paper's Figure 9 claim as
// a rewrite: under Schema 2 (switches at every fork for every token)
// the fig9-bypass workload carries switch/merge pairs for x and w —
// tokens the branches never touch — which the §4 placement proves
// unnecessary. sink-switches must delete them, leaving no more switches
// than the Schema2Opt translation places, and the optimized graph must
// finish in fewer machine cycles.
func TestFigure9SwitchPairRemoved(t *testing.T) {
	g, err := cfg.Build(workloads.MustByName("fig9-bypass").Parse())
	if err != nil {
		t.Fatal(err)
	}
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2})
	if err != nil {
		t.Fatal(err)
	}
	before, err := machine.Run(res.Graph, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	unoptSwitches := countKind(res.Graph, dfg.Switch)
	cert, err := Run(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.RemovedSwitches) == 0 {
		t.Fatal("no redundant switches removed from the Schema 2 running example")
	}
	optRes, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
	if err != nil {
		t.Fatal(err)
	}
	got, ceiling := countKind(res.Graph, dfg.Switch), countKind(optRes.Graph, dfg.Switch)
	if got > ceiling {
		t.Errorf("optimized Schema 2 keeps %d switches; Schema2Opt places only %d", got, ceiling)
	}
	if got >= unoptSwitches {
		t.Errorf("switch count did not drop: %d before, %d after", unoptSwitches, got)
	}
	after, err := machine.Run(res.Graph, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.Cycles >= before.Stats.Cycles {
		t.Errorf("optimized graph is not faster: %d cycles before, %d after", before.Stats.Cycles, after.Stats.Cycles)
	}
}

// TestVetRejectsBogusCertificate: vet validates the optimizer's claims
// rather than trusting them. Inflating a genuine claim or fabricating a
// claim at a slot the contract never placed must both turn into vet
// errors.
func TestVetRejectsBogusCertificate(t *testing.T) {
	g, err := cfg.Build(workloads.MustByName("running-example").Parse())
	if err != nil {
		t.Fatal(err)
	}
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Run(res)
	if err != nil {
		t.Fatal(err)
	}
	if rep := vet.Run(res.Graph, res); !rep.Clean() {
		t.Fatalf("honest certificate should vet clean:\n%s", rep)
	}

	// Inflate one genuine switch claim.
	for k := range cert.RemovedSwitches {
		cert.RemovedSwitches[k]++
		if rep := vet.Run(res.Graph, res); rep.Errors() == 0 {
			t.Errorf("inflated claim at %v not rejected", k)
		}
		cert.RemovedSwitches[k]--
		break
	}

	// Fabricate a claim at a slot the contract never placed.
	bogus := translate.StmtTok{Stmt: 1 << 20, Tok: "no-such-token"}
	cert.RemovedSwitches[bogus] = 1
	if rep := vet.Run(res.Graph, res); rep.Errors() == 0 {
		t.Error("fabricated switch claim not rejected")
	}
	delete(cert.RemovedSwitches, bogus)

	// Overclaim merge removals beyond what the contract places.
	cert.RemovedMerges[bogus] = 3
	if rep := vet.Run(res.Graph, res); rep.Errors() == 0 {
		t.Error("fabricated merge claim not rejected")
	}
	delete(cert.RemovedMerges, bogus)

	if rep := vet.Run(res.Graph, res); !rep.Clean() {
		t.Fatalf("restored certificate should vet clean again:\n%s", rep)
	}
}

// TestOptimizeIsIdempotent: a second pipeline run over an already
// optimized graph must find nothing left to rewrite.
func TestOptimizeIsIdempotent(t *testing.T) {
	g, err := cfg.Build(workloads.MustByName("running-example").Parse())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range allSchemas {
		res, err := translate.Translate(g, translate.Options{Schema: s})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(res); err != nil {
			t.Fatal(err)
		}
		first := dfg.Text(res.Graph)
		cert2, err := Run(res)
		if err != nil {
			t.Fatal(err)
		}
		if n := cert2.Rewrites(); n != 0 {
			t.Errorf("%v: second optimization run rewrote %d more times", s, n)
		}
		if dfg.Text(res.Graph) != first {
			t.Errorf("%v: second optimization run changed the graph text", s)
		}
	}
}

func countKind(g *dfg.Graph, k dfg.Kind) int {
	n := 0
	for _, node := range g.Nodes {
		if node.Kind == k {
			n++
		}
	}
	return n
}
