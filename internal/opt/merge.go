package opt

import (
	"ctdf/internal/dfg"
	"ctdf/internal/translate"
)

// collapseMerges flattens merge chains: a merge m1 whose single
// consumer is port 0 of another merge m2 for the same token forwards
// every arriving token verbatim into m2, so m1's arms can feed m2
// directly and m1 disappears. Merge is non-strict first-come-forward
// routing; flattening preserves the multiset of tokens m2 emits (merge
// composition is associative) and determinacy, because the guard sets
// of m1's arms were already pairwise disjoint from each other and from
// m2's other arms (they reached m2 before the rewrite too, just one hop
// later).
//
// Within a round, a merge that has already absorbed arms is skipped as
// a flattening source (its in-arc list is stale); the round loop
// re-runs until no chain remains.
func collapseMerges(g *dfg.Graph, cert *translate.OptCertificate, count, total *int) (*dfg.Graph, error) {
	for {
		e := newEditor(g)
		touched := make([]bool, len(g.Nodes)) // received rewired arms this round
		n := 0
		for _, m1 := range g.Nodes {
			if m1.Kind != dfg.Merge || e.deadN[m1.ID] || touched[m1.ID] {
				continue
			}
			outs := e.outs[m1.ID][0]
			if len(outs) != 1 {
				continue
			}
			a := g.Arcs[outs[0]]
			if a.ToPort != 0 || a.To == m1.ID {
				continue
			}
			m2 := g.Nodes[a.To]
			if m2.Kind != dfg.Merge || m2.Tok != m1.Tok || e.deadN[m2.ID] {
				continue
			}
			ok := true
			for _, ii := range e.ins[m1.ID][0] {
				ia := g.Arcs[ii]
				if e.hasArc(ia.From, ia.FromPort, m2.ID, 0) {
					ok = false // the arm already feeds m2 directly: duplicate
					break
				}
			}
			if !ok {
				continue
			}
			for _, ii := range e.ins[m1.ID][0] {
				ia := g.Arcs[ii]
				e.added = append(e.added, dfg.Arc{From: ia.From, FromPort: ia.FromPort, To: m2.ID, ToPort: 0, Dummy: ia.Dummy})
				e.deadA[ii] = true
			}
			e.deadA[outs[0]] = true
			e.deadN[m1.ID] = true
			touched[m2.ID] = true
			cert.RemovedMerges[translate.StmtTok{Stmt: m1.Stmt, Tok: m1.Tok}]++
			n++
		}
		if n == 0 {
			return g, nil
		}
		ng, err := e.rebuild()
		if err != nil {
			return nil, err
		}
		g = ng
		*count += n
		*total += n
	}
}
