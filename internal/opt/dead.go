package opt

import (
	"ctdf/internal/dfg"
	"ctdf/internal/translate"
)

// eliminateDead deletes pure value nodes (const, binop, unop, fused)
// none of whose outputs has a consumer — typically predicate chains
// orphaned when sink-switches removed the switch that consumed them.
// The tokens such a node produces were already being discarded; what
// needs care is the tokens it consumes. Deleting the node empties its
// producers' output ports, which is only sound when each such port
// either still has another live consumer or may legitimately go
// unconsumed — the same conditions vet's token-balance pass accepts: a
// pure value source, a load's value output (port 0), or a §6.1
// value-token line, where tokens are droppable. Access-token ports
// (stores, switches, merges, synchs, start) must keep at least one
// consumer, so a dead node fed by one of those stays in place (vet
// tolerates it: unconsumed pure values are dead code, not leaks).
//
// Runs to a fixpoint so a whole orphaned chain unravels back-to-front.
func eliminateDead(g *dfg.Graph, res *translate.Result, count, total *int) (*dfg.Graph, error) {
	e := newEditor(g)
	isValue := func(k dfg.Kind) bool {
		return k == dfg.Const || k == dfg.BinOp || k == dfg.UnOp || k == dfg.Fused
	}
	srcSafe := func(sn *dfg.Node, port int) bool {
		if isValue(sn.Kind) {
			return true
		}
		if (sn.Kind == dfg.Load || sn.Kind == dfg.LoadIdx || sn.Kind == dfg.ILoad) && port == 0 {
			return true
		}
		return res != nil && sn.Tok != "" && res.ValueTokens[sn.Tok] != ""
	}

	portLive := make([][]int, len(g.Nodes)) // live out-arc count per (node, port)
	outLive := make([]int, len(g.Nodes))
	for i, n := range g.Nodes {
		portLive[i] = make([]int, n.OutPorts())
	}
	for _, a := range g.Arcs {
		portLive[a.From][a.FromPort]++
		outLive[a.From]++
	}

	n := 0
	for changed := true; changed; {
		changed = false
		for _, v := range g.Nodes {
			if e.deadN[v.ID] || !isValue(v.Kind) || outLive[v.ID] != 0 || v.OutPorts() == 0 {
				continue
			}
			ok := true
			for p := 0; p < v.NIns && ok; p++ {
				for _, ai := range e.ins[v.ID][p] {
					if e.deadA[ai] {
						continue
					}
					a := g.Arcs[ai]
					if portLive[a.From][a.FromPort] > 1 || srcSafe(g.Nodes[a.From], a.FromPort) {
						continue
					}
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for p := 0; p < v.NIns; p++ {
				for _, ai := range e.ins[v.ID][p] {
					if e.deadA[ai] {
						continue
					}
					a := g.Arcs[ai]
					e.deadA[ai] = true
					portLive[a.From][a.FromPort]--
					outLive[a.From]--
				}
			}
			e.deadN[v.ID] = true
			changed = true
			n++
		}
	}
	if n == 0 {
		return g, nil
	}
	ng, err := e.rebuild()
	if err != nil {
		return nil, err
	}
	*count += n
	*total += n
	return ng, nil
}
