package opt

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/dfg"
	"ctdf/internal/interp"
	"ctdf/internal/lang"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// Mutation-style self-tests: each pass gets one graph it must rewrite
// and one it must leave byte-identical. The must-not cases assert
// pointer equality — a pass with nothing to do returns its input graph
// without a rebuild.

// mergeChain builds start → {c1 → m1 → m2, c2 → m2} → end, with both
// merges on token tok2 unless tok1 overrides m1's.
func mergeChain(tok1, tok2 string) *dfg.Graph {
	g := dfg.NewGraph(nil)
	start := g.Add(&dfg.Node{Kind: dfg.Start})
	c1 := g.Add(&dfg.Node{Kind: dfg.Const, Val: 1})
	c2 := g.Add(&dfg.Node{Kind: dfg.Const, Val: 2})
	m1 := g.Add(&dfg.Node{Kind: dfg.Merge, Tok: tok1})
	m2 := g.Add(&dfg.Node{Kind: dfg.Merge, Tok: tok2})
	end := g.Add(&dfg.Node{Kind: dfg.End, NIns: 1})
	g.Connect(start.ID, 0, c1.ID, 0, false)
	g.Connect(start.ID, 0, c2.ID, 0, false)
	g.Connect(c1.ID, 0, m1.ID, 0, false)
	g.Connect(m1.ID, 0, m2.ID, 0, false)
	g.Connect(c2.ID, 0, m2.ID, 0, false)
	g.Connect(m2.ID, 0, end.ID, 0, false)
	return g
}

func TestCollapseMergesFlattensChain(t *testing.T) {
	g := mergeChain("t", "t")
	var count, n int
	ng, err := collapseMerges(g, freshCert(), &count, &n)
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("want 1 merge collapsed, got %d", count)
	}
	if got := countKind(ng, dfg.Merge); got != 1 {
		t.Fatalf("want 1 surviving merge, got %d", got)
	}
	e := newEditor(ng)
	for _, m := range ng.Nodes {
		if m.Kind == dfg.Merge && len(e.ins[m.ID][0]) != 2 {
			t.Fatalf("surviving merge should have absorbed both arms, has %d", len(e.ins[m.ID][0]))
		}
	}
}

func TestCollapseMergesLeavesDistinctTokens(t *testing.T) {
	g := mergeChain("x", "y")
	var count, n int
	ng, err := collapseMerges(g, freshCert(), &count, &n)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 || ng != g {
		t.Fatalf("merges on distinct tokens must not flatten (count %d, rebuilt %v)", count, ng != g)
	}
}

// opChain builds start → {c1, c2} → add → neg → end: a fusable
// four-node pure tree with two external trigger inputs.
func opChain() *dfg.Graph {
	g := dfg.NewGraph(nil)
	start := g.Add(&dfg.Node{Kind: dfg.Start})
	c1 := g.Add(&dfg.Node{Kind: dfg.Const, Val: 1})
	c2 := g.Add(&dfg.Node{Kind: dfg.Const, Val: 2})
	add := g.Add(&dfg.Node{Kind: dfg.BinOp, Op: lang.OpAdd})
	neg := g.Add(&dfg.Node{Kind: dfg.UnOp, Op: lang.OpNeg})
	end := g.Add(&dfg.Node{Kind: dfg.End, NIns: 1})
	g.Connect(start.ID, 0, c1.ID, 0, false)
	g.Connect(start.ID, 0, c2.ID, 0, false)
	g.Connect(c1.ID, 0, add.ID, 0, false)
	g.Connect(c2.ID, 0, add.ID, 1, false)
	g.Connect(add.ID, 0, neg.ID, 0, false)
	g.Connect(neg.ID, 0, end.ID, 0, false)
	return g
}

func TestFuseOperatorsCollapsesTree(t *testing.T) {
	g := opChain()
	var count, n int
	ng, err := fuseOperators(g, &count, &n)
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("want 1 tree fused, got %d", count)
	}
	if got := countKind(ng, dfg.Fused); got != 1 {
		t.Fatalf("want 1 fused node, got %d", got)
	}
	for _, k := range []dfg.Kind{dfg.Const, dfg.BinOp, dfg.UnOp} {
		if got := countKind(ng, k); got != 0 {
			t.Fatalf("tree member kind %v survived fusion (%d left)", k, got)
		}
	}
	if err := ng.Validate(); err != nil {
		t.Fatalf("fused graph invalid: %v", err)
	}
	for _, node := range ng.Nodes {
		if node.Kind != dfg.Fused {
			continue
		}
		fi := ng.FusionOf(node.ID)
		if len(fi.Steps) != 4 || len(fi.Outs) != 1 {
			t.Fatalf("want 4 steps and 1 output, got %d/%d", len(fi.Steps), len(fi.Outs))
		}
		res, err := interp.EvalFused(fi.Steps, make([]int64, node.NIns), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := res[fi.Outs[0]]; got != -3 {
			t.Fatalf("fused -(1+2): want -3, got %d", got)
		}
	}
}

func TestFuseOperatorsLeavesSingleOperator(t *testing.T) {
	g := dfg.NewGraph(nil)
	start := g.Add(&dfg.Node{Kind: dfg.Start})
	b := g.Add(&dfg.Node{Kind: dfg.BinOp, Op: lang.OpAdd})
	end := g.Add(&dfg.Node{Kind: dfg.End, NIns: 1})
	g.Connect(start.ID, 0, b.ID, 0, false)
	g.Connect(start.ID, 0, b.ID, 1, false)
	g.Connect(b.ID, 0, end.ID, 0, false)
	var count, n int
	ng, err := fuseOperators(g, &count, &n)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 || ng != g {
		t.Fatalf("a lone operator must not fuse (count %d, rebuilt %v)", count, ng != g)
	}
}

func TestEliminateDeadUnravelsOrphanedValues(t *testing.T) {
	g := dfg.NewGraph(nil)
	start := g.Add(&dfg.Node{Kind: dfg.Start})
	c := g.Add(&dfg.Node{Kind: dfg.Const, Val: 5})
	u := g.Add(&dfg.Node{Kind: dfg.UnOp, Op: lang.OpNeg})
	g.Connect(start.ID, 0, c.ID, 0, false)
	g.Connect(c.ID, 0, u.ID, 0, false)
	var count, n int
	ng, err := eliminateDead(g, nil, &count, &n)
	if err != nil {
		t.Fatal(err)
	}
	// The unop dies (its feeder is a pure value source); the const stays
	// — deleting it would leave the start port with no consumer.
	if count != 1 {
		t.Fatalf("want exactly the unop removed, got %d removals", count)
	}
	if countKind(ng, dfg.UnOp) != 0 || countKind(ng, dfg.Const) != 1 {
		t.Fatalf("want unop gone and const kept: %d unops, %d consts", countKind(ng, dfg.UnOp), countKind(ng, dfg.Const))
	}
}

func TestEliminateDeadKeepsAccessFedNode(t *testing.T) {
	g := dfg.NewGraph(nil)
	start := g.Add(&dfg.Node{Kind: dfg.Start})
	u := g.Add(&dfg.Node{Kind: dfg.UnOp, Op: lang.OpNeg})
	g.Connect(start.ID, 0, u.ID, 0, false)
	var count, n int
	ng, err := eliminateDead(g, nil, &count, &n)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 || ng != g {
		t.Fatalf("a dead node emptying an access port must stay (count %d, rebuilt %v)", count, ng != g)
	}
}

// TestSinkLeavesMinimalPlacementAlone: the Schema2Opt translation of
// fig9-bypass already places only the switches §4 requires, so the
// sinking pass must report zero rewrites (TestFigure9SwitchPairRemoved
// is its must-rewrite dual).
func TestSinkLeavesMinimalPlacementAlone(t *testing.T) {
	g, err := cfg.Build(workloads.MustByName("fig9-bypass").Parse())
	if err != nil {
		t.Fatal(err)
	}
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Run(res)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Passes[0].Name != "sink-switches" || cert.Passes[0].Rewrites != 0 {
		t.Fatalf("sink-switches should find nothing under Schema2Opt: %+v", cert.Passes)
	}
}

func freshCert() *translate.OptCertificate {
	return &translate.OptCertificate{
		RemovedSwitches: map[translate.StmtTok]int{},
		RemovedMerges:   map[translate.StmtTok]int{},
	}
}
