package opt

import (
	"ctdf/internal/dfg"
)

// fuseOperators collapses maximal single-consumer trees of pure value
// operators (const, binop, unop) into one Fused super-operator per
// tree. A node joins its consumer's tree when it is pure and its result
// goes to exactly one place — then no other operator observes the
// interior token, so evaluating the whole tree inside one firing is
// unobservable except through cost: the interior tokens never enter the
// matching store and the tree retires in one cycle instead of its
// depth.
//
// A tree root is a binop/unop that is not itself absorbable (its result
// fans out, or its consumer is not a pure operator). The fused node's
// external inputs are the arcs crossing into the tree, numbered in
// operand order by a producers-first walk from the root; its single
// output carries the root's result. Trees of size one are left alone,
// and Fused nodes from earlier rounds are not re-fused (their
// multi-step bodies stay as built). External input count is capped at
// 64 to keep the engines' one-word matching bitmask exact.
func fuseOperators(g *dfg.Graph, count, total *int) (*dfg.Graph, error) {
	e := newEditor(g)
	pure := func(k dfg.Kind) bool { return k == dfg.Const || k == dfg.BinOp || k == dfg.UnOp }
	outDeg := func(id int) int {
		d := 0
		for _, arcs := range e.outs[id] {
			d += len(arcs)
		}
		return d
	}
	// absorbable: the node's single consumer is a pure operator tree
	// under construction (binop/unop), so the node belongs to that
	// consumer's tree rather than rooting its own.
	absorbable := func(id int) bool {
		if outDeg(id) != 1 {
			return false
		}
		k := g.Nodes[g.Arcs[e.outs[id][0][0]].To].Kind
		return k == dfg.BinOp || k == dfg.UnOp
	}

	type tree struct {
		root    int
		steps   []dfg.FusedOp
		ext     map[int]int // arc index → external input port
		members []int
		nExt    int
	}
	treeOf := make([]int, len(g.Nodes))
	for i := range treeOf {
		treeOf[i] = -1
	}
	var trees []*tree

	for _, root := range g.Nodes {
		if (root.Kind != dfg.BinOp && root.Kind != dfg.UnOp) || treeOf[root.ID] != -1 {
			continue
		}
		if outDeg(root.ID) < 1 || absorbable(root.ID) {
			continue
		}
		t := &tree{root: root.ID, ext: map[int]int{}}
		okTree := true
		var build func(v int) int
		build = func(v int) int {
			if !okTree {
				return 0
			}
			vn := g.Nodes[v]
			var refs [2]int
			for p := 0; p < vn.NIns; p++ {
				arcs := e.ins[v][p]
				if len(arcs) != 1 {
					okTree = false
					return 0
				}
				ai := arcs[0]
				src := g.Arcs[ai].From
				if pure(g.Nodes[src].Kind) && outDeg(src) == 1 && treeOf[src] == -1 {
					refs[p] = build(src)
				} else {
					if t.nExt >= 64 {
						okTree = false
						return 0
					}
					t.ext[ai] = t.nExt
					refs[p] = dfg.FusedInput(t.nExt)
					t.nExt++
				}
			}
			var op dfg.FusedOp
			switch vn.Kind {
			case dfg.Const:
				op = dfg.FusedOp{Kind: dfg.Const, Val: vn.Val, A: refs[0]}
			case dfg.UnOp:
				op = dfg.FusedOp{Kind: dfg.UnOp, Op: vn.Op, A: refs[0]}
			case dfg.BinOp:
				op = dfg.FusedOp{Kind: dfg.BinOp, Op: vn.Op, A: refs[0], B: refs[1]}
			default:
				okTree = false
				return 0
			}
			t.steps = append(t.steps, op)
			t.members = append(t.members, v)
			return len(t.steps) - 1
		}
		build(root.ID)
		if !okTree || len(t.steps) < 2 {
			continue // nothing worth fusing at this root
		}
		for _, m := range t.members {
			treeOf[m] = len(trees)
		}
		trees = append(trees, t)
	}
	if len(trees) == 0 {
		return g, nil
	}

	fusedID := make([]int, len(trees))
	for i, t := range trees {
		rn := g.Nodes[t.root]
		fusedID[i] = e.addNode(&dfg.Node{Kind: dfg.Fused, NIns: t.nExt, NOuts: 1, Stmt: rn.Stmt, Tok: rn.Tok})
		e.newFus = append(e.newFus, dfg.FusedInfo{Node: fusedID[i], Steps: t.steps, Outs: []int{len(t.steps) - 1}})
		for _, m := range t.members {
			e.deadN[m] = true
		}
	}
	for ai, a := range g.Arcs {
		sT, dT := treeOf[a.From], treeOf[a.To]
		if sT == -1 && dT == -1 {
			continue
		}
		e.deadA[ai] = true
		if dT != -1 {
			if p, ok := trees[dT].ext[ai]; ok {
				from, fp := a.From, a.FromPort
				if sT != -1 {
					from, fp = fusedID[sT], 0 // the feeder is another tree's root
				}
				e.added = append(e.added, dfg.Arc{From: from, FromPort: fp, To: fusedID[dT], ToPort: p, Dummy: a.Dummy})
			}
			// Not an external input: an interior arc, dropped — that is
			// the optimization.
			continue
		}
		// Root output crossing out of the tree.
		e.added = append(e.added, dfg.Arc{From: fusedID[sT], FromPort: 0, To: a.To, ToPort: a.ToPort, Dummy: a.Dummy})
	}
	ng, err := e.rebuild()
	if err != nil {
		return nil, err
	}
	*count += len(trees)
	*total += len(trees)
	return ng, nil
}
