package main

import (
	"flag"
	"fmt"
	"os"

	"ctdf"
	"ctdf/internal/obs"
)

// cmdTrace executes a program with the causal execution journal enabled
// and answers provenance questions about the run: -explain renders the
// backward cause cone of a firing ("which operations caused this
// value?"), -impact the forward slice ("what did this firing feed?"),
// -journal saves the journal for later `ctdf replay`, and -chrome /
// -pprof export the run for Perfetto and `go tool pprof`. Anchor specs
// name a node ("d10"), a node at a tag ("d10@0.1", "d10@root"), a label
// substring ("store x"), or a raw firing id ("#42"). See OBSERVABILITY.md
// for a walkthrough on the running example.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	workload := sourceFlags(fs)
	schema, cover, elim, parReads, parStores := translateOptions(fs)
	istructs := istructFlag(fs)
	procs := fs.Int("procs", 0, "processors (0 = unlimited)")
	workers := fs.Int("workers", 1, "shard the machine across N shared-nothing workers (byte-identical execution)")
	latency := fs.Int("latency", 1, "split-phase memory latency in cycles")
	binding := fs.String("binding", "", "alias binding, e.g. x=z (x and z share one location)")
	explain := fs.String("explain", "", "render the backward cause cone of this anchor (NODE[@TAG], label, or #ID)")
	impact := fs.String("impact", "", "render the forward slice of this anchor")
	depth := fs.Int("depth", 0, "limit rendered cone depth (0 = unlimited)")
	journalPath := fs.String("journal", "", "save the journal to this file (.gz compresses) for 'ctdf replay'")
	chrome := fs.String("chrome", "", "export a Chrome Trace Event JSON for Perfetto to this file")
	pprof := fs.String("pprof", "", "export a pprof profile for 'go tool pprof' to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, *workload)
	if err != nil {
		return err
	}
	p, err := ctdf.Compile(src)
	if err != nil {
		return err
	}
	b, err := parseBinding(*binding)
	if err != nil {
		return err
	}
	opt, err := buildOptions(*schema, *cover, *elim, *parReads, *parStores, *istructs)
	if err != nil {
		return err
	}
	d, err := p.Translate(opt)
	if err != nil {
		return err
	}
	r, err := d.Run(ctdf.RunConfig{
		Engine: ctdf.EngineMachine, Processors: *procs, Workers: *workers,
		MemLatency: *latency, Binding: b,
		Obs: &ctdf.ObsOptions{Journal: true, Label: opt.Schema.String()},
	})
	if err != nil {
		return err
	}
	fmt.Println(r.Journal.Summary())

	if *explain != "" {
		text, err := r.Journal.Explain(*explain, *depth)
		if err != nil {
			return err
		}
		fmt.Print(text)
	}
	if *impact != "" {
		text, err := r.Journal.Impact(*impact, *depth)
		if err != nil {
			return err
		}
		fmt.Print(text)
	}
	if *journalPath != "" {
		if err := r.Journal.WriteFile(*journalPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "journal written to %s\n", *journalPath)
	}
	if *chrome != "" {
		w, err := obs.CreateStream(*chrome)
		if err != nil {
			return err
		}
		if err := r.Journal.WriteChromeTrace(w); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "chrome trace written to %s (load at ui.perfetto.dev)\n", *chrome)
	}
	if *pprof != "" {
		f, err := os.Create(*pprof)
		if err != nil {
			return err
		}
		if err := r.Journal.WritePprof(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pprof profile written to %s (inspect with 'go tool pprof -top %s')\n", *pprof, *pprof)
	}
	return nil
}
