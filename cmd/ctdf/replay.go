package main

import (
	"bytes"
	"flag"
	"fmt"

	"ctdf/internal/cfg"
	"ctdf/internal/machine"
	"ctdf/internal/obs"
	"ctdf/internal/obs/journal"
	graphopt "ctdf/internal/opt"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// cmdReplay is the time-travel debugger: it re-executes the machine
// engine under a journal's recorded configuration (fault plan included)
// and diffs the re-execution against the recording firing by firing.
// The machine is deterministic, so any divergence is a bug — in the
// engine, the journal, or the configuration capture — and the command
// exits non-zero. With -at it additionally dumps the reconstructed
// machine state (in-flight firings, live tokens, matching-store
// contents) at that cycle.
//
// Two modes:
//
//	ctdf replay [-at cycle] journal-file   replay one saved journal
//	ctdf replay -suite [-v]                record+replay every serializable
//	                                       workload × schema (verify gate)
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	at := fs.Int("at", -1, "also dump machine state at this cycle")
	suite := fs.Bool("suite", false, "record and replay every serializable workload × schema")
	verbose := fs.Bool("v", false, "suite mode: print one line per replayed run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite {
		return replaySuite(*verbose)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one journal file (or -suite)")
	}
	j, err := journal.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Println(j.Summary())
	rr, err := journal.Replay(j)
	if err != nil {
		return err
	}
	fmt.Print(rr.Text())
	if *at >= 0 {
		st, err := rr.Replayed.StateAt(*at)
		if err != nil {
			return err
		}
		fmt.Print(st.Text(rr.Replayed))
	}
	if len(rr.Divergences) > 0 {
		return fmt.Errorf("replay diverged from the recording")
	}
	return nil
}

// replaySuite records and replays the same workload × schema matrix the
// vet suite verifies (minus linked procedure graphs, which are not
// serializable in dfg text format v1), pushing every journal through an
// NDJSON round trip first so the gate also covers serialization. Every
// cell runs twice — as translated and through the graph optimizer — so
// the gate proves optimized graphs (fused super-operators included)
// journal and replay exactly like plain ones. Each variant runs at
// worker counts 1 and 4: the sharded machine's contract is
// byte-identical execution, so both journals must replay divergence-free
// AND agree with each other firing by firing. It is the replay gate run
// by scripts/verify.sh.
func replaySuite(verbose bool) error {
	schemas := []translate.Options{
		{Schema: translate.Schema1},
		{Schema: translate.Schema2},
		{Schema: translate.Schema2Opt},
		{Schema: translate.Schema3},
		{Schema: translate.Schema3Opt},
	}
	workerCounts := []int{1, 4}
	runs, diverged := 0, 0
	for _, w := range workloads.All() {
		g := cfg.MustBuild(w.Parse())
		for _, opt := range schemas {
			for _, optimized := range []bool{false, true} {
				res, err := translate.Translate(g, opt)
				if err != nil {
					return fmt.Errorf("%s/%v: %w", w.Name, opt.Schema, err)
				}
				if len(res.Graph.Calls) > 0 {
					continue
				}
				variant := ""
				if optimized {
					if _, err := graphopt.Run(res); err != nil {
						return fmt.Errorf("%s/%v: optimize: %w", w.Name, opt.Schema, err)
					}
					variant = "+opt"
				}
				var baseline *journal.Journal
				for _, workers := range workerCounts {
					label := fmt.Sprintf("%s/%v%s/w%d", w.Name, opt.Schema, variant, workers)
					jcfg := journal.Config{Processors: 2, MemLatency: 3, Workers: workers}
					rec := journal.NewRecorder(res.Graph, label, jcfg)
					col := obs.NewCollector(res.Graph, obs.Options{Journal: rec})
					out, err := machine.Run(res.Graph, machine.Config{Processors: 2, MemLatency: 3, Collector: col, Workers: workers})
					if err != nil {
						return fmt.Errorf("%s: %w", label, err)
					}
					j := rec.Finish(out.Stats.Cycles)
					var buf bytes.Buffer
					if err := j.Write(&buf); err != nil {
						return fmt.Errorf("%s: %w", label, err)
					}
					loaded, err := journal.Read(&buf)
					if err != nil {
						return fmt.Errorf("%s: reload: %w", label, err)
					}
					rr, err := journal.Replay(loaded)
					if err != nil {
						return fmt.Errorf("%s: %w", label, err)
					}
					runs++
					if len(rr.Divergences) > 0 {
						diverged++
						fmt.Printf("%s: DIVERGED\n%s", label, rr.Text())
					} else if verbose {
						fmt.Printf("%-40s ok: %d firings, %d cycles\n", label, len(loaded.Fires), loaded.Cycles)
					}
					// Cross-worker-count byte-exactness: the sharded journal must
					// match the sequential one firing by firing.
					if baseline == nil {
						baseline = loaded
					} else if ds := journal.Diff(baseline, loaded); len(ds) > 0 {
						diverged++
						fmt.Printf("%s: DIVERGED from w%d journal:\n", label, workerCounts[0])
						for _, d := range ds {
							fmt.Printf("  %s\n", d)
						}
					}
				}
			}
		}
	}
	fmt.Printf("replay suite: %d runs replayed (worker counts %v), %d diverged\n", runs, workerCounts, diverged)
	if diverged > 0 {
		return fmt.Errorf("replay suite: %d divergent runs", diverged)
	}
	return nil
}
