// Command ctdf compiles programs in the paper's imperative language to
// dataflow graphs and executes them on the explicit-token-store machine
// simulator or the goroutine engine.
//
// Usage:
//
//	ctdf run [flags] (file | -workload name)      execute a program
//	ctdf profile [flags] (file | -workload name)  observed run: NDJSON events + report
//	ctdf top [flags] (file | -workload name)      live telemetry view of a running machine
//	ctdf trace [flags] (file | -workload name)    causal journal: explain/impact, exports
//	ctdf replay [flags] (journal | -suite)        time-travel replay of a saved journal
//	ctdf dot [flags] (file | -workload name)      emit Graphviz (CFG or DFG)
//	ctdf stats [flags] (file | -workload name)    dataflow graph sizes per schema
//	ctdf vet [flags] (file | -workload name)      statically verify the dataflow graph
//	ctdf opt [flags] (file | -workload name)      run the graph optimizer, report deltas
//	ctdf experiments [flags] [id ...]             regenerate EXPERIMENTS.md tables
//	ctdf chaos [flags]                            fault-injection detection matrix
//	ctdf workloads                                list built-in workloads
//
// Programs use the paper's language: `var`/`array`/`alias` declarations,
// assignments, structured if/while, and `if p then goto l1 else goto l2`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"ctdf"
	"ctdf/internal/experiments"
	"ctdf/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "dot":
		err = cmdDot(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "vet":
		err = cmdVet(os.Args[2:])
	case "opt":
		err = cmdOpt(os.Args[2:])
	case "aliases":
		err = cmdAliases(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "chaos":
		err = cmdChaos(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "workloads":
		err = cmdWorkloads()
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctdf:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  ctdf run [flags] (file | -workload name)
  ctdf profile [flags] (file | -workload name)
  ctdf top [flags] (file | -workload name)
  ctdf trace [flags] (file | -workload name)
  ctdf replay [flags] (journal-file | -suite)
  ctdf dot [flags] (file | -workload name)
  ctdf stats (file | -workload name)
  ctdf vet [flags] (file | -workload name | -suite)
  ctdf opt [flags] (file | -workload name)
  ctdf aliases (file | -workload name)
  ctdf explain [flags] (file | -workload name)
  ctdf experiments [flags] [id ...]
  ctdf chaos [flags]
  ctdf bench [flags]
  ctdf workloads
Use 'ctdf run -h' etc. for per-command flags.
`)
}

// sourceFlags adds the common program-selection flags.
func sourceFlags(fs *flag.FlagSet) (workload *string) {
	return fs.String("workload", "", "run a built-in workload instead of a file")
}

func loadSource(fs *flag.FlagSet, workload string) (string, error) {
	if workload != "" {
		w, err := workloads.ByName(workload)
		if err != nil {
			return "", fmt.Errorf("unknown workload %q (see 'ctdf workloads')", workload)
		}
		return w.Source, nil
	}
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected exactly one source file (or -workload)")
	}
	name := fs.Arg(0)
	if name == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(name)
	return string(b), err
}

func translateOptions(fs *flag.FlagSet) (schema, cover *string, elim, parReads, parStores *bool) {
	schema = fs.String("schema", "schema2-opt", "translation schema: schema1, schema2, schema2-opt, schema3, schema3-opt")
	cover = fs.String("cover", "singleton", "schema 3 cover: singleton, class, monolithic")
	elim = fs.Bool("elim", false, "eliminate memory operations for unaliased scalars (§6.1)")
	parReads = fs.Bool("parreads", false, "parallelize read sequences (§6.2)")
	parStores = fs.Bool("parstores", false, "parallelize independent array stores (§6.3)")
	return
}

func istructFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("istructs", false, "give write-once arrays I-structure semantics (§6.3)")
}

func buildOptions(schema, cover string, elim, parReads, parStores, istructs bool) (ctdf.Options, error) {
	s, err := ctdf.ParseSchema(schema)
	if err != nil {
		return ctdf.Options{}, err
	}
	opt := ctdf.Options{Schema: s, EliminateMemory: elim, ParallelReads: parReads, ParallelArrayStores: parStores, UseIStructures: istructs}
	switch cover {
	case "singleton":
		opt.Cover = ctdf.CoverSingleton
	case "class":
		opt.Cover = ctdf.CoverClass
	case "monolithic":
		opt.Cover = ctdf.CoverMonolithic
	default:
		return ctdf.Options{}, fmt.Errorf("unknown cover %q", cover)
	}
	return opt, nil
}

func parseBinding(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad binding %q (want name=canonical,…)", pair)
		}
		out[kv[0]] = kv[1]
	}
	return out, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workload := sourceFlags(fs)
	schema, cover, elim, parReads, parStores := translateOptions(fs)
	istructs := istructFlag(fs)
	engine := fs.String("engine", "machine", "execution engine: machine, channels, interp")
	procs := fs.Int("procs", 0, "processors (0 = unlimited)")
	latency := fs.Int("latency", 1, "split-phase memory latency in cycles")
	binding := fs.String("binding", "", "alias binding, e.g. x=z (x and z share one location)")
	seed := fs.Int64("seed", 0, "randomize machine issue order with this seed")
	races := fs.Bool("races", false, "detect overlapping conflicting memory operations")
	parissue := fs.Bool("parissue", false, "evaluate pure operators of large issue batches on a worker pool (machine engine)")
	workers := fs.Int("workers", 1, "shard the machine across N shared-nothing workers (byte-identical execution)")
	profile := fs.Bool("profile", false, "print the per-cycle parallelism profile")
	legalize := fs.Bool("legalize", false, "decompose wide synch collectors into two-input trees")
	linked := fs.Bool("linked", false, "compile procedures separately (Apply/Param/ProcReturn linkage)")
	trace := fs.Bool("trace", false, "print one line per operator firing")
	deadline := fs.Duration("deadline", 0, "wall-clock deadline per attempt (0 = none)")
	supervise := fs.Bool("recover", false, "supervise the run: retry transient aborts, resuming the machine from its last checkpoint")
	metrics := fs.String("metrics", "", "serve OpenMetrics at this address (e.g. :9464) during and after the run; ctrl-c to exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, *workload)
	if err != nil {
		return err
	}
	p, err := ctdf.Compile(src)
	if err != nil {
		return err
	}
	b, err := parseBinding(*binding)
	if err != nil {
		return err
	}

	if *engine == "interp" {
		r, err := p.Interpret(b)
		if err != nil {
			return err
		}
		fmt.Printf("engine: sequential interpreter\nstatements: %d\n%s", r.Ops, r.Snapshot)
		return nil
	}

	opt, err := buildOptions(*schema, *cover, *elim, *parReads, *parStores, *istructs)
	if err != nil {
		return err
	}
	var d *ctdf.Dataflow
	if *linked {
		d, err = p.TranslateLinked()
	} else {
		d, err = p.Translate(opt)
	}
	if err != nil {
		return err
	}
	if *legalize {
		var added int
		d, added = d.LegalizeSynchTrees()
		fmt.Fprintf(os.Stderr, "legalized: %d two-input synchs added\n", added)
	}
	cfg := ctdf.RunConfig{
		Processors: *procs, MemLatency: *latency, Binding: b,
		RandomSeed: *seed, DetectRaces: *races, ParallelIssue: *parissue,
		Workers: *workers, Deadline: *deadline,
	}
	if *supervise {
		cfg.Recovery = &ctdf.RecoveryPolicy{}
	}
	var srv *ctdf.TelemetryServer
	if *metrics != "" {
		cfg.Telemetry = ctdf.NewTelemetry()
		srv, err = cfg.Telemetry.Serve(*metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: serving http://%s/metrics\n", srv.Addr())
	}
	if *trace {
		cfg.Trace = os.Stderr
	}
	switch *engine {
	case "machine":
		cfg.Engine = ctdf.EngineMachine
	case "channels":
		cfg.Engine = ctdf.EngineChannels
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
	r, err := d.Run(cfg)
	if err != nil {
		if r != nil && r.Recovery != nil && len(r.Recovery.Checks) > 0 {
			fmt.Fprintf(os.Stderr, "recovery: %d attempt(s) aborted (%s)\n",
				r.Recovery.Attempts, strings.Join(r.Recovery.Checks, ", "))
		}
		if r != nil && r.Checkpoint != nil {
			// The abort left a last-good checkpoint behind; its cycle is a
			// direct `ctdf replay -at` target on this run's journal.
			fmt.Fprintf(os.Stderr, "last checkpoint: id %d at cycle %d — reconstruct it with `ctdf replay ... -at %d`\n",
				r.Checkpoint.ID, r.Checkpoint.Cycle, r.Checkpoint.Cycle)
		}
		return err
	}
	if r.Recovery != nil && r.Recovery.Recovered {
		fmt.Fprintf(os.Stderr, "recovered after %d attempts (%s): %d checkpoints taken, %d cycles replayed\n",
			r.Recovery.Attempts, strings.Join(r.Recovery.Checks, ", "),
			r.Recovery.CheckpointsTaken, r.Recovery.CyclesReplayed)
	}
	st := d.Stats()
	fmt.Printf("schema: %s   engine: %s\n", opt.Schema, *engine)
	fmt.Printf("graph: %d nodes, %d arcs (%d switches, %d merges, %d synchs, %d loads, %d stores)\n",
		st.Nodes, st.Arcs, st.Switches, st.Merges, st.Synchs, st.Loads, st.Stores)
	if cfg.Engine == ctdf.EngineMachine {
		fmt.Printf("cycles: %d   ops: %d   mem ops: %d   parallelism: avg %.2f, max %d   peak match store: %d\n",
			r.Cycles, r.Ops, r.MemOps, r.AvgParallelism, r.MaxParallelism, r.PeakMatchStore)
		if is := d.IStructures(); len(is) > 0 {
			fmt.Printf("i-structure arrays: %s\n", strings.Join(is, ", "))
		}
		if *profile {
			fmt.Print(ctdf.ProfileChart(r.Profile, r.Cycles, 72, 10))
		}
	} else {
		fmt.Printf("ops: %d\n", r.Ops)
	}
	fmt.Print(r.Snapshot)
	if srv != nil {
		// Hold the endpoint open so the final counters stay scrapeable —
		// the seed of a long-running `ctdf serve`.
		fmt.Fprintln(os.Stderr, "metrics: run complete, still serving (ctrl-c to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	workload := sourceFlags(fs)
	schema, cover, elim, parReads, parStores := translateOptions(fs)
	istructs := istructFlag(fs)
	kind := fs.String("graph", "dfg", "which graph to render: cfg, dfg")
	format := fs.String("format", "dot", "output format for dfg: dot, text, listing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, *workload)
	if err != nil {
		return err
	}
	p, err := ctdf.Compile(src)
	if err != nil {
		return err
	}
	switch *kind {
	case "cfg":
		fmt.Print(p.ControlFlowDOT())
		return nil
	case "dfg":
		opt, err := buildOptions(*schema, *cover, *elim, *parReads, *parStores, *istructs)
		if err != nil {
			return err
		}
		d, err := p.Translate(opt)
		if err != nil {
			return err
		}
		switch *format {
		case "dot":
			fmt.Print(d.DOT())
		case "text":
			fmt.Print(d.Text())
		case "listing":
			fmt.Print(d.Listing())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		return nil
	}
	return fmt.Errorf("unknown graph kind %q", *kind)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	workload := sourceFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, *workload)
	if err != nil {
		return err
	}
	p, err := ctdf.Compile(src)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %6s %6s %9s %7s %7s %6s %7s\n",
		"schema", "nodes", "arcs", "switches", "merges", "synchs", "loads", "stores")
	for _, s := range []ctdf.Schema{ctdf.Schema1, ctdf.Schema2, ctdf.Schema2Opt, ctdf.Schema3, ctdf.Schema3Opt} {
		d, err := p.Translate(ctdf.Options{Schema: s})
		if err != nil {
			return err
		}
		st := d.Stats()
		fmt.Printf("%-12s %6d %6d %9d %7d %7d %6d %7d\n",
			s, st.Nodes, st.Arcs, st.Switches, st.Merges, st.Synchs, st.Loads, st.Stores)
	}
	return nil
}

// cmdAliases prints the per-procedure alias structures derived from the
// program's call sites (paper §5).
func cmdAliases(args []string) error {
	fs := flag.NewFlagSet("aliases", flag.ExitOnError)
	workload := sourceFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, *workload)
	if err != nil {
		return err
	}
	p, err := ctdf.Compile(src)
	if err != nil {
		return err
	}
	pas, err := p.DeriveAliases()
	if err != nil {
		return err
	}
	if len(pas) == 0 {
		fmt.Println("no procedures declared")
		return nil
	}
	for _, pa := range pas {
		fmt.Printf("proc %s(%s):\n", pa.Proc, strings.Join(pa.Formals, ", "))
		for _, f := range pa.Formals {
			fmt.Printf("  [%s] = {%s}\n", f, strings.Join(pa.Class[f], ", "))
		}
	}
	return nil
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	jsonDir := fs.String("json", "", "also write one JSON artifact per experiment into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, a := range fs.Args() {
		want[a] = true
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			return err
		}
	}
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("== %s: %s (%s) ==\n", e.ID, e.Title, e.Paper)
		out, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(out)
		if *jsonDir != "" {
			js, err := e.JSON()
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			js = append(js, '\n')
			path := *jsonDir + string(os.PathSeparator) + e.Artifact
			if err := os.WriteFile(path, js, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func cmdWorkloads() error {
	for _, w := range workloads.All() {
		paper := ""
		if w.Paper != "" {
			paper = " (" + w.Paper + ")"
		}
		fmt.Printf("%-24s%s\n", w.Name, paper)
	}
	return nil
}
