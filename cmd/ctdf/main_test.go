package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestCmdRunWorkload(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdRun([]string{"-workload", "running-example", "-schema", "schema2", "-latency", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"schema: schema2", "cycles:", "x=5", "y=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdRunFile(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "p.cf")
	if err := os.WriteFile(file, []byte("var x\nx := 41 + 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return cmdRun([]string{file}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "x=42") {
		t.Errorf("output missing x=42:\n%s", out)
	}
}

func TestCmdRunInterp(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdRun([]string{"-workload", "gcd", "-engine", "interp"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a=21") || !strings.Contains(out, "interpreter") {
		t.Errorf("interp output wrong:\n%s", out)
	}
}

func TestCmdRunChannels(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdRun([]string{"-workload", "fib-iterative", "-engine", "channels"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a=144") || !strings.Contains(out, "ops:") {
		t.Errorf("channels output wrong:\n%s", out)
	}
}

func TestCmdRunBinding(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdRun([]string{"-workload", "fortran-alias", "-schema", "schema3", "-binding", "x=z"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "x=30") {
		t.Errorf("binding not applied:\n%s", out)
	}
}

func TestCmdDotFormats(t *testing.T) {
	for format, want := range map[string]string{
		"dot":     "digraph dfg",
		"text":    "ctdf-dataflow v1",
		"listing": "=>",
	} {
		out, err := capture(t, func() error {
			return cmdDot([]string{"-workload", "diamond", "-format", format})
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("format %s output missing %q", format, want)
		}
	}
	out, err := capture(t, func() error {
		return cmdDot([]string{"-workload", "diamond", "-graph", "cfg"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph cfg") {
		t.Errorf("cfg dot wrong:\n%s", out)
	}
}

func TestCmdStats(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdStats([]string{"-workload", "fig9-bypass"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"schema1", "schema2-opt", "switches"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdAliases(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdAliases([]string{"-workload", "proc-fortran"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[z] = {x, y, z}") {
		t.Errorf("aliases output wrong:\n%s", out)
	}
}

func TestCmdExplain(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdExplain([]string{"-workload", "fig9-bypass"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"control-flow graph", "postdominators", "control dependences",
		"switch placement", "source vectors", "dataflow graph",
		"matches the sequential interpreter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q", want)
		}
	}
}

func TestCmdExplainWithLoops(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdExplain([]string{"-workload", "running-example", "-schema", "schema2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "interval transformation") || !strings.Contains(out, "loop entry") {
		t.Errorf("explain output missing loop sections:\n%s", out[:200])
	}
}

func TestCmdExperimentsSingle(t *testing.T) {
	out, err := capture(t, func() error { return cmdExperiments([]string{"E1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E1:") || strings.Contains(out, "E2:") {
		t.Errorf("experiment filter wrong:\n%s", out)
	}
}

func TestCmdWorkloads(t *testing.T) {
	out, err := capture(t, func() error { return cmdWorkloads() })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "running-example") || !strings.Contains(out, "Figure 1") {
		t.Errorf("workloads listing wrong:\n%s", out)
	}
}

func TestCmdErrors(t *testing.T) {
	if _, err := capture(t, func() error { return cmdRun([]string{"-workload", "nope"}) }); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := capture(t, func() error { return cmdRun([]string{"-schema", "zorp", "-workload", "gcd"}) }); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := capture(t, func() error { return cmdRun([]string{"-binding", "x", "-workload", "gcd"}) }); err == nil {
		t.Error("bad binding accepted")
	}
	if _, err := capture(t, func() error { return cmdRun([]string{}) }); err == nil {
		t.Error("missing source accepted")
	}
	if _, err := capture(t, func() error { return cmdDot([]string{"-workload", "gcd", "-format", "zorp"}) }); err == nil {
		t.Error("unknown format accepted")
	}
}
