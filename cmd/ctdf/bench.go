package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ctdf/internal/bench"
)

// cmdBench runs the benchmark-trajectory harness (internal/bench): the
// E11/E12 workload matrix plus the simulator-scaling sizes, reported as
// BENCH_machine.json with speedups against the committed pre-overhaul
// seed baseline. In -smoke mode it runs the fast subset and fails if
// allocs/op on the steady-state cells regresses above the committed
// baseline tolerance — the CI gate wired into scripts/verify.sh.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	smoke := fs.Bool("smoke", false, "run the fast subset and gate allocs/op against the committed baseline")
	cpu := fs.String("cpu", "1,4,8", "comma-separated worker counts for the sharded-machine scaling matrix (empty to skip)")
	benchtime := fs.Duration("benchtime", 0, "measurement time per cell (default 1s, 150ms in smoke mode)")
	out := fs.String("out", "BENCH_machine.json", "where to write the report (full mode)")
	baseline := fs.String("baseline", "BENCH_machine.json", "committed report the smoke gate compares against")
	tolerance := fs.Float64("tolerance", 0.25, "allowed fractional allocs/op regression in smoke mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	bt := *benchtime
	if bt == 0 {
		bt = time.Second
		if *smoke {
			bt = 150 * time.Millisecond
		}
	}
	cpus, err := parseCPUList(*cpu)
	if err != nil {
		return err
	}
	rep, err := bench.RunMatrix(bt, *smoke, cpus)
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	if rep.MaxScalingSpeedup > 0 {
		fmt.Printf("speedup vs seed on scaling/size=16: %.2fx\n", rep.MaxScalingSpeedup)
	}
	if rep.WorkerSpeedup > 0 {
		fmt.Printf("worker scaling: %.2fx fires/sec at the largest worker count (GOMAXPROCS=%d)\n",
			rep.WorkerSpeedup, rep.GOMAXPROCS)
	}
	if violations := bench.ScalingGate(rep); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "scaling gate:", v)
		}
		return fmt.Errorf("scaling gate: sharded machine failed to scale")
	}
	if violations := bench.OptGate(rep); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "opt gate:", v)
		}
		return fmt.Errorf("opt gate: graph optimizer regressed %d cell(s)", len(violations))
	}
	if violations := bench.TelemetryGate(rep); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "telemetry gate:", v)
		}
		return fmt.Errorf("telemetry gate: instrumentation overhead above budget in %d cell(s)", len(violations))
	}

	if *smoke {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			return fmt.Errorf("bench gate: cannot read committed baseline: %w", err)
		}
		var committed bench.Report
		if err := json.Unmarshal(data, &committed); err != nil {
			return fmt.Errorf("bench gate: corrupt baseline %s: %w", *baseline, err)
		}
		if violations := bench.Gate(rep, &committed, *tolerance); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "bench gate:", v)
			}
			return fmt.Errorf("bench gate: %d steady-state allocation regression(s)", len(violations))
		}
		fmt.Println("bench gate: steady-state allocs/op within tolerance")
		return nil
	}

	js, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(js, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cells)\n", *out, len(rep.Results))
	return nil
}

// parseCPUList parses the -cpu flag ("1,4,8") into worker counts;
// "" and "0" mean skip the worker matrix.
func parseCPUList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "0" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cpu list %q (want comma-separated worker counts, e.g. 1,4,8)", s)
		}
		out = append(out, n)
	}
	return out, nil
}
