package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ctdf"
	"ctdf/internal/workloads"
)

// cmdVet statically verifies dataflow graphs against the paper's
// correctness conditions (see ANALYSIS.md): structure, token balance,
// determinacy, switch placement, source vectors, and alias-cover
// soundness. Exits non-zero when any error-severity diagnostic is found.
//
// Two modes:
//
//	ctdf vet [flags] (file | -workload name)   verify one translation
//	ctdf vet -suite [-json file]               verify every workload × schema
func cmdVet(args []string) error {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	workload := sourceFlags(fs)
	schema, cover, elim, parReads, parStores := translateOptions(fs)
	istructs := istructFlag(fs)
	linked := fs.Bool("linked", false, "compile procedures separately before verifying")
	suite := fs.Bool("suite", false, "verify every built-in workload under every schema")
	optimize := fs.Bool("optimize", false, "suite mode: also verify the optimized translation of every cell")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	jsonPath := fs.String("jsonfile", "", "write the report as JSON to this file")
	verbose := fs.Bool("v", false, "suite mode: print one line per verified graph")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite {
		return vetSuite(*jsonOut, *jsonPath, *verbose, *optimize)
	}

	src, err := loadSource(fs, *workload)
	if err != nil {
		return err
	}
	p, err := ctdf.Compile(src)
	if err != nil {
		return err
	}
	var d *ctdf.Dataflow
	if *linked {
		d, err = p.TranslateLinked()
	} else {
		var opt ctdf.Options
		if opt, err = buildOptions(*schema, *cover, *elim, *parReads, *parStores, *istructs); err == nil {
			d, err = p.Translate(opt)
		}
	}
	if err != nil {
		return err
	}
	rep := d.Vet()
	if err := emitVet(rep, *jsonOut, *jsonPath); err != nil {
		return err
	}
	if rep.Errors > 0 {
		return fmt.Errorf("vet: %d errors", rep.Errors)
	}
	return nil
}

// vetSuiteEntry is one row of the suite artifact.
type vetSuiteEntry struct {
	Workload    string               `json:"workload"`
	Schema      string               `json:"schema"`
	Linked      bool                 `json:"linked,omitempty"`
	Passes      int                  `json:"passes"`
	Skipped     int                  `json:"skipped,omitempty"`
	Errors      int                  `json:"errors"`
	Warnings    int                  `json:"warnings"`
	Diagnostics []ctdf.VetDiagnostic `json:"diagnostics,omitempty"`
}

// vetSuiteReport is the artifacts/vet.json schema (deterministic: no
// timestamps, fixed iteration order).
type vetSuiteReport struct {
	Verified int             `json:"verified"`
	Clean    int             `json:"clean"`
	Errors   int             `json:"errors"`
	Warnings int             `json:"warnings"`
	Entries  []vetSuiteEntry `json:"entries"`
}

func vetSuite(jsonOut bool, jsonPath string, verbose, optimize bool) error {
	schemas := []ctdf.Schema{ctdf.Schema1, ctdf.Schema2, ctdf.Schema2Opt, ctdf.Schema3, ctdf.Schema3Opt}
	rep := &vetSuiteReport{}
	add := func(name, schemaName string, linked bool, vr *ctdf.VetReport) {
		e := vetSuiteEntry{
			Workload: name, Schema: schemaName, Linked: linked,
			Passes: len(vr.Passes), Skipped: len(vr.Skipped),
			Errors: vr.Errors, Warnings: vr.Warnings,
		}
		if !vr.Clean() {
			e.Diagnostics = vr.Diagnostics
		}
		rep.Entries = append(rep.Entries, e)
		rep.Verified++
		if vr.Clean() {
			rep.Clean++
		}
		rep.Errors += vr.Errors
		rep.Warnings += vr.Warnings
		if verbose {
			fmt.Printf("%-24s %-12s errors=%d warnings=%d\n", name, schemaName, vr.Errors, vr.Warnings)
		}
	}
	for _, w := range workloads.All() {
		p, err := ctdf.Compile(w.Source)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		if p.HasProcedures() {
			d, err := p.TranslateLinked()
			if err != nil {
				return fmt.Errorf("%s: linked: %w", w.Name, err)
			}
			add(w.Name, "linked", true, d.Vet())
			continue
		}
		for _, s := range schemas {
			d, err := p.Translate(ctdf.Options{Schema: s})
			if err != nil {
				return fmt.Errorf("%s/%s: %w", w.Name, s, err)
			}
			add(w.Name, s.String(), false, d.Vet())
			if !optimize {
				continue
			}
			od, err := p.Translate(ctdf.Options{Schema: s, Optimize: 1})
			if err != nil {
				return fmt.Errorf("%s/%s+opt: %w", w.Name, s, err)
			}
			add(w.Name, s.String()+"+opt", false, od.Vet())
		}
	}
	fmt.Printf("vet suite: %d graphs verified, %d clean, %d errors, %d warnings\n",
		rep.Verified, rep.Clean, rep.Errors, rep.Warnings)
	if jsonOut || jsonPath != "" {
		js, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		js = append(js, '\n')
		if jsonOut {
			os.Stdout.Write(js)
		}
		if jsonPath != "" {
			if err := os.WriteFile(jsonPath, js, 0o644); err != nil {
				return err
			}
			fmt.Printf("report written to %s\n", jsonPath)
		}
	}
	if rep.Errors > 0 {
		return fmt.Errorf("vet suite: %d errors", rep.Errors)
	}
	return nil
}

func emitVet(rep *ctdf.VetReport, jsonOut bool, jsonPath string) error {
	if jsonOut || jsonPath != "" {
		js, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		js = append(js, '\n')
		if jsonOut {
			os.Stdout.Write(js)
		}
		if jsonPath != "" {
			if err := os.WriteFile(jsonPath, js, 0o644); err != nil {
				return err
			}
		}
	}
	if !jsonOut {
		fmt.Print(rep.String())
	}
	return nil
}
