package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"ctdf/internal/analysis"
	"ctdf/internal/cfg"
	"ctdf/internal/dfg"
	"ctdf/internal/interp"
	"ctdf/internal/lang"
	"ctdf/internal/machine"
	"ctdf/internal/translate"
)

// cmdExplain walks one program through every stage of the paper's
// pipeline, printing the intermediate artifacts: CFG, postdominators,
// control dependences, switch placement, source vectors, the dataflow
// listing, and an execution summary.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	workload := sourceFlags(fs)
	schemaName := fs.String("schema", "schema2-opt", "translation schema")
	latency := fs.Int("latency", 4, "split-phase memory latency in cycles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, *workload)
	if err != nil {
		return err
	}
	schema, err := translate.ParseSchema(*schemaName)
	if err != nil {
		return err
	}

	prog, err := lang.Parse(src)
	if err != nil {
		return err
	}
	fmt.Println("== source ==")
	fmt.Print(prog.Format())

	g, err := cfg.Build(prog)
	if err != nil {
		return err
	}
	fmt.Println("\n== control-flow graph (§2.1) ==")
	fmt.Print(g.String())

	g2, copied, err := cfg.MakeReducible(g)
	if err != nil {
		return err
	}
	if copied > 0 {
		fmt.Printf("\n== code copying (footnote 5): %d nodes duplicated ==\n", copied)
	}
	tg, loops, err := cfg.InsertLoopControl(g2)
	if err != nil {
		return err
	}
	if len(loops) > 0 {
		fmt.Printf("\n== interval transformation (§3): %d loop(s) ==\n", len(loops))
		for _, l := range loops {
			fmt.Printf("loop entry n%d (header n%d, depth %d, exits %v, %d body nodes)\n",
				l.Entry, l.Header, l.Depth, l.Exits, len(l.Body))
		}
		fmt.Println("\ntransformed CFG:")
		fmt.Print(tg.String())
	}

	pdom := cfg.PostDominators(tg)
	fmt.Println("\n== immediate postdominators (footnote 6) ==")
	for _, id := range tg.SortedIDs() {
		if ip := pdom.Idom[id]; ip >= 0 {
			fmt.Printf("ipdom(n%d) = n%d\n", id, ip)
		}
	}

	cd := analysis.ComputeControlDeps(tg)
	fmt.Println("\n== control dependences (Definition 4) ==")
	for _, id := range tg.SortedIDs() {
		if deps := cd.CD(id); len(deps) > 0 {
			var parts []string
			for _, f := range deps {
				parts = append(parts, fmt.Sprintf("n%d", f))
			}
			fmt.Printf("CD(n%d) = {%s}\n", id, strings.Join(parts, ", "))
		}
	}

	res, err := translate.Translate(g, translate.Options{Schema: schema})
	if err != nil {
		return err
	}
	fmt.Printf("\n== switch placement (Figure 10), schema %s ==\n", schema)
	forks := make([]int, 0, len(res.Placement.Needs))
	for f := range res.Placement.Needs {
		forks = append(forks, f)
	}
	sort.Ints(forks)
	for _, f := range forks {
		fmt.Printf("%s switches: %s\n", res.CFG.Nodes[f], strings.Join(res.Placement.Tokens(f), ", "))
	}

	fmt.Println("\n== source vectors (Figure 11), non-trivial entries ==")
	for _, id := range res.CFG.SortedIDs() {
		toks := make([]string, 0, len(res.SV.SV[id]))
		for tok := range res.SV.SV[id] {
			toks = append(toks, tok)
		}
		sort.Strings(toks)
		for _, tok := range toks {
			srcs := res.SV.SV[id][tok]
			if len(srcs) == 0 {
				continue
			}
			var parts []string
			for _, s := range srcs {
				parts = append(parts, s.String())
			}
			fmt.Printf("SV_n%d(%s) = {%s}\n", id, tok, strings.Join(parts, ", "))
		}
	}

	st := res.Graph.Stats()
	fmt.Printf("\n== dataflow graph: %d nodes, %d arcs (%d switches, %d merges, %d synchs) ==\n",
		st.Nodes, st.Arcs, st.Switches, st.Merges, st.Synchs)
	fmt.Print(dfg.Listing(res.Graph))

	out, err := machine.Run(res.Graph, machine.Config{MemLatency: *latency})
	if err != nil {
		return err
	}
	want, err := interp.Run(res.CFG, interp.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("\n== execution (L=%d, unlimited processors) ==\n", *latency)
	fmt.Printf("cycles: %d   ops: %d   avg parallelism: %.2f   peak match store: %d\n",
		out.Stats.Cycles, out.Stats.Ops, out.Stats.AvgParallelism(), out.Stats.PeakMatchStore)
	fmt.Print(out.Stats.ProfileChart(64, 8))
	got := translate.FinalSnapshot(res, out.Store, out.EndValues)
	fmt.Println("final state:")
	fmt.Print(got)
	if got == want.Store.Snapshot() {
		fmt.Println("matches the sequential interpreter ✓")
	} else {
		fmt.Println("!! DOES NOT MATCH THE INTERPRETER !!")
	}
	return nil
}
