package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ctdf"
	"ctdf/internal/obs"
)

// cmdProfile executes a program as an observed run: it streams the
// NDJSON event stream (node metadata, cycle-stamped fire/wait events,
// and a trailing summary line), then prints the human-readable report —
// per-node counters, per-kind aggregation, parallelism histogram, and
// the critical path with per-operator attribution. With -vs it runs the
// program a second time under another schema and prints the structured
// diff. See OBSERVABILITY.md for the event schema and a walkthrough.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	workload := sourceFlags(fs)
	schema, cover, elim, parReads, parStores := translateOptions(fs)
	istructs := istructFlag(fs)
	engine := fs.String("engine", "machine", "execution engine: machine, channels")
	procs := fs.Int("procs", 0, "processors (0 = unlimited)")
	latency := fs.Int("latency", 1, "split-phase memory latency in cycles")
	workers := fs.Int("workers", 1, "shard the machine across N workers (byte-identical execution)")
	binding := fs.String("binding", "", "alias binding, e.g. x=z (x and z share one location)")
	events := fs.String("events", "-", "NDJSON event stream destination: -, a file path, or none")
	jsonOut := fs.String("json", "", "also write the report as JSON: - or a file path")
	tel := fs.Bool("telemetry", false, "record engine telemetry; print the per-shard phase breakdown and traffic matrix")
	telJSON := fs.String("telemetry-json", "", "also write the telemetry snapshot as JSON: - or a file path")
	top := fs.Int("top", 10, "per-node rows shown in the text report (0 = all)")
	vs := fs.String("vs", "", "also run under this schema and print the diff (baseline = -schema)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, *workload)
	if err != nil {
		return err
	}
	p, err := ctdf.Compile(src)
	if err != nil {
		return err
	}
	b, err := parseBinding(*binding)
	if err != nil {
		return err
	}
	cfg := ctdf.RunConfig{Processors: *procs, MemLatency: *latency, Workers: *workers, Binding: b}
	var reg *ctdf.Telemetry
	if *tel || *telJSON != "" {
		reg = ctdf.NewTelemetry()
	}
	switch *engine {
	case "machine":
		cfg.Engine = ctdf.EngineMachine
	case "channels":
		cfg.Engine = ctdf.EngineChannels
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}

	var eventsW io.Writer
	switch *events {
	case "none", "":
	case "-":
		eventsW = os.Stdout
	default:
		// CreateStream gzips transparently when the path ends in ".gz".
		f, err := obs.CreateStream(*events)
		if err != nil {
			return err
		}
		defer f.Close()
		eventsW = f
	}

	run := func(schemaName string, w io.Writer) (*ctdf.Result, error) {
		opt, err := buildOptions(schemaName, *cover, *elim, *parReads, *parStores, *istructs)
		if err != nil {
			return nil, err
		}
		d, err := p.Translate(opt)
		if err != nil {
			return nil, err
		}
		return d.Run(ctdf.RunConfig{
			Engine: cfg.Engine, Processors: cfg.Processors, MemLatency: cfg.MemLatency,
			Workers: cfg.Workers, Binding: cfg.Binding,
			Telemetry: reg,
			Obs: &ctdf.ObsOptions{
				Events:       w,
				CriticalPath: cfg.Engine == ctdf.EngineMachine,
				Label:        opt.Schema.String(),
			},
		})
	}

	r, err := run(*schema, eventsW)
	if err != nil {
		return err
	}
	fmt.Printf("schema: %s   engine: %s\n", *schema, *engine)
	fmt.Print(r.Obs.Text(*top))
	if reg != nil {
		snap := reg.Snapshot()
		if *tel {
			fmt.Println()
			fmt.Print(snap.PhaseTable())
		}
		if *telJSON != "" {
			js, err := snap.JSON()
			if err != nil {
				return err
			}
			js = append(js, '\n')
			if *telJSON == "-" {
				os.Stdout.Write(js)
			} else if err := os.WriteFile(*telJSON, js, 0o644); err != nil {
				return err
			}
		}
	}

	if *jsonOut != "" {
		js, err := r.Obs.JSON()
		if err != nil {
			return err
		}
		js = append(js, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(js)
		} else if err := os.WriteFile(*jsonOut, js, 0o644); err != nil {
			return err
		}
	}

	if *vs != "" {
		r2, err := run(*vs, nil)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(ctdf.CompareObs(r.Obs, r2.Obs).Text())
	}
	return nil
}
