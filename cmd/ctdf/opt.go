package main

import (
	"flag"
	"fmt"

	"ctdf"
)

// cmdOpt translates a program, runs the post-translation graph
// optimizer, and reports what changed: graph size and machine-cycle
// deltas, and with -explain the per-pass rewrite counts. The optimized
// graph must still vet clean — the command verifies that before
// printing anything.
func cmdOpt(args []string) error {
	fs := flag.NewFlagSet("opt", flag.ExitOnError)
	workload := sourceFlags(fs)
	schema, cover, elim, parReads, parStores := translateOptions(fs)
	istructs := istructFlag(fs)
	explain := fs.Bool("explain", false, "print per-pass rewrite counts")
	format := fs.String("format", "", "also emit the optimized graph: text, dot, listing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, *workload)
	if err != nil {
		return err
	}
	p, err := ctdf.Compile(src)
	if err != nil {
		return err
	}
	opt, err := buildOptions(*schema, *cover, *elim, *parReads, *parStores, *istructs)
	if err != nil {
		return err
	}
	d, err := p.Translate(opt)
	if err != nil {
		return err
	}
	before := d.Stats()
	beforeRun, err := d.Run(ctdf.RunConfig{})
	if err != nil {
		return err
	}
	passes, err := d.Optimize()
	if err != nil {
		return err
	}
	if rep := d.Vet(); !rep.Clean() {
		return fmt.Errorf("optimized graph failed vet:\n%s", rep)
	}
	after := d.Stats()
	afterRun, err := d.Run(ctdf.RunConfig{})
	if err != nil {
		return err
	}
	if beforeRun.Snapshot != afterRun.Snapshot {
		return fmt.Errorf("optimizer changed the result:\nbefore %safter %s", beforeRun.Snapshot, afterRun.Snapshot)
	}

	fmt.Printf("schema: %s\n", opt.Schema)
	fmt.Printf("graph: %d → %d nodes, %d → %d arcs (%d → %d switches, %d → %d merges)\n",
		before.Nodes, after.Nodes, before.Arcs, after.Arcs,
		before.Switches, after.Switches, before.Merges, after.Merges)
	fmt.Printf("machine: %d → %d cycles, %d → %d firings\n",
		beforeRun.Cycles, afterRun.Cycles, beforeRun.Ops, afterRun.Ops)
	if *explain {
		total := 0
		for _, ps := range passes {
			fmt.Printf("  %-16s %4d rewrites\n", ps.Name, ps.Rewrites)
			total += ps.Rewrites
		}
		fmt.Printf("  %-16s %4d rewrites\n", "total", total)
	}
	switch *format {
	case "":
	case "text":
		fmt.Print(d.Text())
	case "dot":
		fmt.Print(d.DOT())
	case "listing":
		fmt.Print(d.Listing())
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}
