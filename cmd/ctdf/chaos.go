package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ctdf/internal/chaos"
)

// cmdChaos runs the fault-injection detection matrix: every injected
// fault must be caught by a named machine check or by oracle mismatch
// (see ROBUSTNESS.md). Exits non-zero on any undetected fault or leaked
// goroutine. With -recover it runs the recovery matrix instead: every
// transient fault class must be survived — supervised runs
// (RunConfig.Recovery) retried to an output byte-identical to the
// fault-free golden.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	smoke := fs.Bool("smoke", false, "fast CI gate: one schema, two workloads")
	seed := fs.Int64("seed", 1, "seed for deterministic injection-site selection")
	deadline := fs.Duration("deadline", 10*time.Second, "per-run deadline")
	jsonPath := fs.String("json", "", "write the detection matrix as JSON to this file")
	verbose := fs.Bool("v", false, "print every matrix cell")
	recover := fs.Bool("recover", false, "run the recovery matrix: prove transient faults are survived, not just detected")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *recover {
		return chaosRecover(chaos.Config{Smoke: *smoke, Seed: *seed, Deadline: *deadline}, *jsonPath, *verbose)
	}
	m, err := chaos.Run(chaos.Config{Smoke: *smoke, Seed: *seed, Deadline: *deadline})
	if err != nil {
		return err
	}
	if *verbose {
		for _, c := range m.Cells {
			fmt.Printf("%-8s %-12s %-16s %-20s site %d/%d: %s\n",
				c.Engine, c.Schema, c.Workload, c.Class, c.Site, c.Sites, c.Outcome)
		}
		for _, r := range m.Replay {
			abort := "clean finish"
			if r.Abort != "" {
				abort = fmt.Sprintf("%s @ cycle %d", r.Abort, r.AbortCycle)
			}
			fmt.Printf("replay   %-12s %-16s %-20s site %d: %s (%s)\n",
				r.Schema, r.Workload, r.Class, r.Site, r.Outcome, abort)
		}
	}
	fmt.Print(m.Summary())
	if *jsonPath != "" {
		js, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		js = append(js, '\n')
		if err := os.WriteFile(*jsonPath, js, 0o644); err != nil {
			return err
		}
		fmt.Printf("matrix written to %s\n", *jsonPath)
	}
	if m.Detected != m.Total {
		return fmt.Errorf("chaos: %d of %d injected faults went undetected", m.Total-m.Detected, m.Total)
	}
	if m.LeakedGoroutines != 0 {
		return fmt.Errorf("chaos: %d goroutines leaked across the sweep", m.LeakedGoroutines)
	}
	if m.ReplayReproduced != m.ReplayTotal {
		return fmt.Errorf("chaos: %d of %d fault journals failed to replay exactly",
			m.ReplayTotal-m.ReplayReproduced, m.ReplayTotal)
	}
	return nil
}

// chaosRecover runs the recovery matrix and writes artifacts/recover.json
// style output. Exits non-zero on any unrecovered transient cell or
// leaked goroutine.
func chaosRecover(cfg chaos.Config, jsonPath string, verbose bool) error {
	m, err := chaos.RunRecover(cfg)
	if err != nil {
		return err
	}
	if verbose {
		for _, c := range m.Cells {
			fmt.Printf("%-8s %-12s %-16s %-20s w%d site %d/%d attempts %d: %s\n",
				c.Engine, c.Schema, c.Workload, c.Class, c.Workers, c.Site, c.Sites, c.Attempts, c.Outcome)
		}
	}
	fmt.Print(m.Summary())
	if jsonPath != "" {
		js, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		js = append(js, '\n')
		if err := os.WriteFile(jsonPath, js, 0o644); err != nil {
			return err
		}
		fmt.Printf("matrix written to %s\n", jsonPath)
	}
	if m.OK != m.Total {
		return fmt.Errorf("chaos: %d of %d transient-fault cells were not recovered", m.Total-m.OK, m.Total)
	}
	if m.LeakedGoroutines != 0 {
		return fmt.Errorf("chaos: %d goroutines leaked across the recovery sweep", m.LeakedGoroutines)
	}
	return nil
}
