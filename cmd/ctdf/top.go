package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"ctdf"
)

// cmdTop is a live telemetry view: it executes the workload on the
// machine engine in a background loop — the registry accumulates across
// iterations — and repaints the per-shard phase breakdown, barrier
// waits, and cross-shard traffic matrix at every -refresh tick, the way
// `top` repaints process state. It exits after -duration (0 = until
// ctrl-c), leaving the final table on screen.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	workload := sourceFlags(fs)
	schema, cover, elim, parReads, parStores := translateOptions(fs)
	istructs := istructFlag(fs)
	procs := fs.Int("procs", 0, "processors (0 = unlimited)")
	latency := fs.Int("latency", 1, "split-phase memory latency in cycles")
	workers := fs.Int("workers", 1, "shard the machine across N workers")
	binding := fs.String("binding", "", "alias binding, e.g. x=z (x and z share one location)")
	refresh := fs.Duration("refresh", 500*time.Millisecond, "repaint interval")
	duration := fs.Duration("duration", 10*time.Second, "how long to keep running (0 = until ctrl-c)")
	metrics := fs.String("metrics", "", "also serve OpenMetrics at this address while running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, *workload)
	if err != nil {
		return err
	}
	p, err := ctdf.Compile(src)
	if err != nil {
		return err
	}
	b, err := parseBinding(*binding)
	if err != nil {
		return err
	}
	opt, err := buildOptions(*schema, *cover, *elim, *parReads, *parStores, *istructs)
	if err != nil {
		return err
	}
	d, err := p.Translate(opt)
	if err != nil {
		return err
	}

	reg := ctdf.NewTelemetry()
	if *metrics != "" {
		srv, err := reg.Serve(*metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: serving http://%s/metrics\n", srv.Addr())
	}
	cfg := ctdf.RunConfig{
		Processors: *procs, MemLatency: *latency, Workers: *workers,
		Binding: b, Telemetry: reg,
	}

	// The runner loops the workload until told to stop; each iteration
	// is a fresh simulation feeding the same registry, so the view shows
	// live accumulating totals. runErr carries the first failure out.
	stop := make(chan struct{})
	idle := make(chan struct{})
	var iters atomic.Int64
	var runErr error
	go func() {
		defer close(idle)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.Run(cfg); err != nil {
				runErr = err
				return
			}
			iters.Add(1)
		}
	}()

	intr := make(chan os.Signal, 1)
	signal.Notify(intr, os.Interrupt)
	defer signal.Stop(intr)
	var deadline <-chan time.Time
	if *duration > 0 {
		deadline = time.After(*duration)
	}
	if *refresh <= 0 {
		*refresh = 500 * time.Millisecond
	}
	tick := time.NewTicker(*refresh)
	defer tick.Stop()

	paint := func(clear bool) {
		if clear {
			// Home the cursor and wipe the previous frame.
			fmt.Print("\x1b[H\x1b[2J")
		}
		fmt.Printf("ctdf top — schema %s, %d worker(s), %d iteration(s)\n\n", opt.Schema, *workers, iters.Load())
		fmt.Print(reg.Snapshot().PhaseTable())
	}
	running := true
	for running {
		select {
		case <-tick.C:
			paint(true)
		case <-deadline:
			running = false
		case <-intr:
			running = false
		case <-idle:
			running = false
		}
	}
	close(stop)
	<-idle
	paint(false)
	return runErr
}
