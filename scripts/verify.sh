#!/bin/sh
# Tier-1 verification gate: build, static checks, tests, benchmark smoke.
# Run from anywhere; operates on the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race -timeout 5m ./...

echo "== chaos smoke matrix =="
go run ./cmd/ctdf chaos -smoke

echo "== vet suite =="
# Every committed workload × schema must verify statically clean
# (see ANALYSIS.md; the committed snapshot is artifacts/vet.json).
go run ./cmd/ctdf vet -suite

echo "== benchmark smoke =="
go test -run=NONE -bench='BenchmarkE11|BenchmarkObs' -benchtime=1x .

echo "== bench trajectory gate =="
# Fails when a steady-state cell's allocs/op regresses beyond tolerance
# against the committed BENCH_machine.json (see PERFORMANCE.md).
go run ./cmd/ctdf bench -smoke

echo "== OK =="
