#!/bin/sh
# Tier-1 verification gate: build, static checks, tests, benchmark smoke.
# Run from anywhere; operates on the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race -timeout 5m ./...

echo "== sharded machine -race (W=4) =="
# The sharded engine's byte-exactness suites (worker counts 2, 3, 4, 8,
# forced through the worker pool) under the race detector — the check
# that holds the parallel phases to the shared-nothing discipline
# described in SCALING.md. Also covered by the full -race run above;
# this named step keeps the gate visible and independently runnable.
go test -race -run 'Sharded' -count=1 ./internal/machine ./internal/obs/journal

echo "== chaos smoke matrix =="
go run ./cmd/ctdf chaos -smoke

echo "== checkpoint determinism -race =="
# Checkpoint capture/restore property tests (byte-exact resume at every
# boundary, worker portability, fault-taint refusal) under the race
# detector — the foundation the recovery supervisor rests on
# (see ROBUSTNESS.md). Also covered by the full -race run above; this
# named step keeps the gate visible and independently runnable.
go test -race -run 'Checkpoint' -count=1 ./internal/machine

echo "== recovery matrix =="
# Every transient fault class × engine × schema × workload × workers
# {1,4} must be survived byte-identically by the supervisor, with zero
# leaked goroutines. Regenerates the committed artifact; exit is
# non-zero on any unrecovered cell (see ROBUSTNESS.md).
go run ./cmd/ctdf chaos -recover -json artifacts/recover.json

echo "== vet suite (plain + optimized) =="
# Every committed workload × schema must verify statically clean, both
# as translated and after the graph optimizer — whose certificate vet
# validates rather than trusts (see ANALYSIS.md; the committed snapshot
# is artifacts/vet.json).
go run ./cmd/ctdf vet -suite -optimize

echo "== replay divergence gate =="
# Record and replay every serializable workload × schema, plain and
# optimized, at worker counts 1 and 4: the machine is deterministic, so
# every journal must reproduce with zero divergences
# (see OBSERVABILITY.md).
go run ./cmd/ctdf replay -suite

echo "== pprof export acceptance =="
# The hand-rolled profile.proto encoding must be accepted by go tool pprof.
go run ./cmd/ctdf trace -workload running-example -latency 4 \
    -pprof /tmp/ctdf-verify.pprof.pb.gz >/dev/null
go tool pprof -raw /tmp/ctdf-verify.pprof.pb.gz >/dev/null
rm -f /tmp/ctdf-verify.pprof.pb.gz

echo "== benchmark smoke =="
go test -run=NONE -bench='BenchmarkE11|BenchmarkObs|BenchmarkTelemetry' -benchtime=1x .

echo "== /metrics endpoint smoke =="
# Serve the telemetry registry over real HTTP, run an instrumented
# sharded workload, scrape /metrics, check OpenMetrics framing, and
# require zero leaked goroutines after Close (see OBSERVABILITY.md).
go test -run 'TestMetricsHTTPSmoke' -count=1 .

echo "== bench trajectory gate =="
# Fails when a steady-state cell's allocs/op regresses beyond tolerance
# against the committed BENCH_machine.json (see PERFORMANCE.md), when
# the sharded machine's worker-scaling matrix falls below the host-aware
# fires/sec floors (see SCALING.md), or when an optimized cell takes
# more cycles / fires more operators than its unoptimized counterpart
# (the graph-optimizer non-regression gate, bench.OptGate), or when the
# telemetry-enabled engine falls below TelemetryOverheadFloor of the
# uninstrumented throughput (the instrumentation-overhead tripwire,
# bench.TelemetryGate; see OBSERVABILITY.md).
go run ./cmd/ctdf bench -smoke -cpu 1,4

echo "== OK =="
