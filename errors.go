package ctdf

import (
	"ctdf/internal/machcheck"
)

// Machine-check sentinels. Every execution abort in either engine is a
// typed *internal* machine-check error that matches exactly one of these
// under errors.Is, so callers can dispatch on the failure class without
// parsing messages:
//
//	r, err := d.Run(ctdf.RunConfig{Deadline: time.Second})
//	if errors.Is(err, ctdf.ErrDeadlock) { ... inspect r, the partial result ... }
//
// Aborted runs still return a partial *Result (final store so far, op
// counts, observability report), so failures stay inspectable. The full
// taxonomy and each check's guarantee are documented in ROBUSTNESS.md.
var (
	// ErrDeadlock: execution quiesced (or an I-structure read was
	// deferred forever) before the end node fired — tokens are stuck. On
	// the channel engine a wall-clock deadline doubles as the deadlock
	// oracle, so deadline expiry also reports ErrDeadlock there.
	ErrDeadlock error = machcheck.ErrDeadlock
	// ErrTokenLeak: strict token conservation failed — partially matched
	// activations or live procedure activations survived the run.
	ErrTokenLeak error = machcheck.ErrTokenLeak
	// ErrTagViolation: a token arrived with an impossible tag — a
	// duplicate at a matching port, a non-root tag at end, an unbalanced
	// loop context, or an unknown activation.
	ErrTagViolation error = machcheck.ErrTagViolation
	// ErrCyclesExceeded: the run exceeded MaxCycles or MaxOps (runaway
	// loop or token explosion).
	ErrCyclesExceeded error = machcheck.ErrCyclesExceeded
	// ErrDeadline: the machine simulator exceeded its wall-clock
	// deadline.
	ErrDeadline error = machcheck.ErrDeadline
	// ErrOperatorFault: an operator trapped — division by zero, an array
	// index out of range, an I-structure write-once violation.
	ErrOperatorFault error = machcheck.ErrOperatorFault
	// ErrDeterminacy: race detection observed overlapping conflicting
	// memory operations, contradicting dataflow determinacy.
	ErrDeterminacy error = machcheck.ErrDeterminacy
	// ErrInvalidConfig: the run configuration was rejected before (or a
	// checkpoint restore failed during) startup.
	ErrInvalidConfig error = machcheck.ErrInvalidConfig
)

// CheckName returns the machine-check name carried by err ("deadlock",
// "token-leak", ...) and whether err is a machine-check error at all.
func CheckName(err error) (string, bool) {
	c, ok := machcheck.Of(err)
	return string(c), ok
}
