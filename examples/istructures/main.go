// I-structures: the final enhancement of §6.3. When an array is provably
// write-once, its reads and writes need no access tokens at all: the
// memory defers a premature read until the cell is written, so a consumer
// loop overlaps the producer loop that fills the array.
package main

import (
	"fmt"
	"log"
	"strings"

	"ctdf"
)

const src = `
var i, j, s
array a[24]
i := 0
while i < 24 {
  a[i] := i * i
  i := i + 1
}
j := 0
while j < 24 {
  s := s + a[j]
  j := j + 1
}
`

func main() {
	p, err := ctdf.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := p.Interpret(nil)
	if err != nil {
		log.Fatal(err)
	}

	base, err := p.Translate(ctdf.Options{Schema: ctdf.Schema2Opt, EliminateMemory: true})
	if err != nil {
		log.Fatal(err)
	}
	ist, err := p.Translate(ctdf.Options{
		Schema: ctdf.Schema2Opt, EliminateMemory: true, UseIStructures: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write-once analysis accepted: %s\n\n", strings.Join(ist.IStructures(), ", "))

	fmt.Printf("%-10s %22s %22s %9s\n", "latency L", "access-token cycles", "I-structure cycles", "speedup")
	for _, lat := range []int{1, 4, 8, 16, 32, 64} {
		bo, err := base.Run(ctdf.RunConfig{MemLatency: lat})
		if err != nil {
			log.Fatal(err)
		}
		io, err := ist.Run(ctdf.RunConfig{MemLatency: lat})
		if err != nil {
			log.Fatal(err)
		}
		if bo.Snapshot != ref.Snapshot || io.Snapshot != ref.Snapshot {
			log.Fatal("wrong result")
		}
		fmt.Printf("%-10d %22d %22d %9.2f\n", lat, bo.Cycles, io.Cycles,
			float64(bo.Cycles)/float64(io.Cycles))
	}

	fmt.Println("\nwith access tokens, the consumer's first read waits for the")
	fmt.Println("producer's access token to leave the first loop; with I-structure")
	fmt.Println("memory each read defers only until its own cell is written, so the")
	fmt.Println("loops pipeline.")
}
