// Array stores: the §6.3 / Figure 14 transformation. The loop stores to
// x[i] with i a strict induction variable, so the stores of successive
// iterations are independent: each iteration's store receives a replica
// of the access token (which races ahead to the next iteration) while
// completions accumulate on a separate line. Sequential stores cost about
// N·L cycles; parallelized stores pipeline to about N + L.
package main

import (
	"fmt"
	"log"

	"ctdf"
)

const src = `
var i
array x[33]
start: i := i + 1
x[i] := i * i
if i < 32 then goto start else goto end
`

func main() {
	p, err := ctdf.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := p.Interpret(nil)
	if err != nil {
		log.Fatal(err)
	}

	seq, err := p.Translate(ctdf.Options{Schema: ctdf.Schema2Opt, EliminateMemory: true})
	if err != nil {
		log.Fatal(err)
	}
	par, err := p.Translate(ctdf.Options{
		Schema: ctdf.Schema2Opt, EliminateMemory: true, ParallelArrayStores: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	const n = 32
	fmt.Printf("%-16s %12s %12s %9s %10s\n", "store latency L", "sequential", "parallelized", "speedup", "N·L floor")
	for _, lat := range []int{1, 2, 5, 10, 20, 50, 100} {
		so, err := seq.Run(ctdf.RunConfig{MemLatency: lat})
		if err != nil {
			log.Fatal(err)
		}
		po, err := par.Run(ctdf.RunConfig{MemLatency: lat, DetectRaces: true})
		if err != nil {
			log.Fatal(err)
		}
		if so.Snapshot != ref.Snapshot || po.Snapshot != ref.Snapshot {
			log.Fatal("wrong answer")
		}
		fmt.Printf("%-16d %12d %12d %9.2f %10d\n",
			lat, so.Cycles, po.Cycles, float64(so.Cycles)/float64(po.Cycles), n*lat)
	}

	fmt.Println("\nthe sequential translation is pinned above the N·L floor; the")
	fmt.Println("Figure 14 transformation overlaps the stores, so its time grows")
	fmt.Println("like N + L instead of N·L.")
}
