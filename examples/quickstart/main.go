// Quickstart: compile the paper's running example (§2.1, Figure 1) to a
// dataflow graph under each translation schema and execute it on the
// explicit-token-store machine simulator, comparing against sequential
// interpretation.
package main

import (
	"fmt"
	"log"

	"ctdf"
)

const src = `
var x, y
l: y := x + 1
x := x + 1
if x < 5 then goto l else goto end
`

func main() {
	p, err := ctdf.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// The von Neumann baseline: a program counter walking the CFG.
	ref, err := p.Interpret(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sequential interpreter:")
	fmt.Print(ref.Snapshot)
	fmt.Println()

	// Every schema computes the same answer; the schemas differ in how
	// much parallelism the dataflow graph exposes.
	fmt.Printf("%-12s %8s %6s %9s %10s\n", "schema", "cycles", "ops", "avg par", "switches")
	for _, s := range []ctdf.Schema{ctdf.Schema1, ctdf.Schema2, ctdf.Schema2Opt} {
		d, err := p.Translate(ctdf.Options{Schema: s})
		if err != nil {
			log.Fatal(err)
		}
		r, err := d.Run(ctdf.RunConfig{MemLatency: 4})
		if err != nil {
			log.Fatal(err)
		}
		if r.Snapshot != ref.Snapshot {
			log.Fatalf("%v disagrees with the interpreter!", s)
		}
		fmt.Printf("%-12s %8d %6d %9.2f %10d\n", s, r.Cycles, r.Ops, r.AvgParallelism, d.Stats().Switches)
	}
	fmt.Println("\nall schemas reproduce the interpreter's result: x=5, y=5")
}
