// Aliasing: the paper's §5 FORTRAN example. The subroutine F(X, Y, Z) is
// called as F(A,B,A) and F(C,D,D), so X~Z and Y~Z but X and Y are never
// the same location. Schema 3 compiles one body that is correct for every
// legal binding, parameterized by a cover; the choice of cover trades
// parallelism against synchronization.
package main

import (
	"fmt"
	"log"

	"ctdf"
)

const src = `
var x, y, z, r
alias x ~ z
alias y ~ z
x := 10
y := 20
z := x + y
r := z * 2
`

func main() {
	p, err := ctdf.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// The two call sites of the paper correspond to two bindings.
	bindings := []struct {
		name string
		b    map[string]string
	}{
		{"all distinct", nil},
		{"CALL F(A,B,A): x,z share", map[string]string{"x": "x", "z": "x"}},
		{"CALL F(C,D,D): y,z share", map[string]string{"y": "y", "z": "y"}},
	}
	covers := []struct {
		name string
		c    ctdf.CoverKind
	}{
		{"singleton", ctdf.CoverSingleton},
		{"class", ctdf.CoverClass},
		{"monolithic", ctdf.CoverMonolithic},
	}

	for _, bc := range bindings {
		ref, err := p.Interpret(bc.b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("binding %-28s interpreter: %s\n", bc.name, oneLine(ref.Snapshot))
		for _, cv := range covers {
			d, err := p.Translate(ctdf.Options{Schema: ctdf.Schema3, Cover: cv.c})
			if err != nil {
				log.Fatal(err)
			}
			r, err := d.Run(ctdf.RunConfig{Binding: bc.b, DetectRaces: true})
			if err != nil {
				log.Fatal(err)
			}
			status := "OK"
			if r.Snapshot != ref.Snapshot {
				status = "WRONG"
			}
			fmt.Printf("  cover %-11s tokens=%d  cycles=%-4d %s\n",
				cv.name, len(d.Tokens()), r.Cycles, status)
		}
	}

	// An illegal binding (x and y are not aliases) is rejected up front.
	d, _ := p.Translate(ctdf.Options{Schema: ctdf.Schema3})
	if _, err := d.Run(ctdf.RunConfig{Binding: map[string]string{"x": "x", "y": "x"}}); err != nil {
		fmt.Printf("\nillegal binding rejected as expected: %v\n", err)
	}
}

func oneLine(snap string) string {
	out := ""
	for _, line := range splitLines(snap) {
		if out != "" {
			out += " "
		}
		out += line
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
