// Loop parallelism: how much instruction-level parallelism each schema and
// §6 transformation exposes in a loop-heavy kernel, measured as machine
// cycles across processor counts — the measurement model the paper
// motivates ("ideally suited for measuring the extent to which
// parallelization techniques can expose parallelism", §1).
package main

import (
	"fmt"
	"log"

	"ctdf"
)

// An iterative Fibonacci next to two independent running sums: the loop
// bodies are serial chains, but the three loops share no variables, so
// per-variable access tokens let them overlap.
const src = `
var a, b, t, i, n
var s1, j1
var s2, j2
n := 14
a := 0
b := 1
i := 0
while i < n {
  t := a + b
  a := b
  b := t
  i := i + 1
}
j1 := 0
while j1 < 12 {
  s1 := s1 + j1 * j1
  j1 := j1 + 1
}
j2 := 0
while j2 < 12 {
  s2 := s2 + 3 * j2
  j2 := j2 + 1
}
`

func main() {
	p, err := ctdf.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := p.Interpret(nil)
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		opt  ctdf.Options
	}{
		{"schema1 (sequential)", ctdf.Options{Schema: ctdf.Schema1}},
		{"schema2 (per-var tokens)", ctdf.Options{Schema: ctdf.Schema2}},
		{"schema2-opt (no redundant switches)", ctdf.Options{Schema: ctdf.Schema2Opt}},
		{"schema2-opt + §6.1 memory elimination", ctdf.Options{Schema: ctdf.Schema2Opt, EliminateMemory: true}},
	}
	procs := []int{1, 2, 4, 8, 0}

	fmt.Printf("%-40s", "cycles (memory latency 4)")
	for _, pr := range procs {
		if pr == 0 {
			fmt.Printf("%8s", "∞ procs")
		} else {
			fmt.Printf("%8d", pr)
		}
	}
	fmt.Println()

	for _, c := range configs {
		d, err := p.Translate(c.opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s", c.name)
		for _, pr := range procs {
			r, err := d.Run(ctdf.RunConfig{Processors: pr, MemLatency: 4})
			if err != nil {
				log.Fatal(err)
			}
			if r.Snapshot != ref.Snapshot {
				log.Fatalf("%s computed a wrong answer", c.name)
			}
			fmt.Printf("%8d", r.Cycles)
		}
		fmt.Println()
	}

	fmt.Println("\nthe three independent loops overlap as soon as tokens are per-variable;")
	fmt.Println("eliminating scalar memory traffic (§6.1) removes the load/store latency")
	fmt.Println("from every loop-carried dependence chain.")
}
