// Procedures: the paper's §5 FORTRAN setting. A subroutine with
// reference parameters is called from several sites; the alias structure
// of its formals is derived from those call sites, the body is compiled
// ONCE under that structure (Schema 3), and the one dataflow graph
// computes the right answer under the storage binding each call induces.
package main

import (
	"fmt"
	"log"
	"strings"

	"ctdf"
)

// SUBROUTINE F(X, Y, Z); CALL F(A,B,A); CALL F(C,D,D) — the paper's
// example, § 5.
const src = `
var a, b, c, d
proc f(x, y, z) {
  z := x + y
  x := x * 2
}
a := 1
b := 2
call f(a, b, a)
c := 10
d := 20
call f(c, d, d)
`

func main() {
	p, err := ctdf.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Derive the alias structure of f's formals from the call sites.
	pas, err := p.DeriveAliases()
	if err != nil {
		log.Fatal(err)
	}
	for _, pa := range pas {
		fmt.Printf("derived alias structure of %s(%s):\n", pa.Proc, strings.Join(pa.Formals, ", "))
		for _, f := range pa.Formals {
			fmt.Printf("  [%s] = {%s}\n", f, strings.Join(pa.Class[f], ", "))
		}
	}
	fmt.Println("\n(the paper's result: [x]={x,z}, [y]={y,z}, [z]={x,y,z};")
	fmt.Println(" x and y are NOT aliased — the relation is not transitive)")

	// 2. The whole program still runs through every schema: calls are
	// expanded by reference substitution; the dataflow result matches the
	// sequential interpreter.
	ref, err := p.Interpret(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninterpreter result:")
	fmt.Print(ref.Snapshot)
	for _, s := range []ctdf.Schema{ctdf.Schema2Opt, ctdf.Schema3} {
		d, err := p.Translate(ctdf.Options{Schema: s})
		if err != nil {
			log.Fatal(err)
		}
		r, err := d.Run(ctdf.RunConfig{DetectRaces: true})
		if err != nil {
			log.Fatal(err)
		}
		status := "matches interpreter"
		if r.Snapshot != ref.Snapshot {
			status = "MISMATCH"
		}
		fmt.Printf("%-12s: %d cycles, %s\n", s, r.Cycles, status)
	}
}
