// Separate compilation: the paper's §2.2 activation contexts, taken
// literally. Each procedure body is compiled into the dataflow graph once;
// every call pushes a fresh activation frame on the token tags and binds
// the formals, so concurrent calls to one body overlap — and the graph
// grows with the number of procedures, not call sites.
package main

import (
	"fmt"
	"log"

	"ctdf"
)

func program(calls int) string {
	src := `var a0, a1, a2, a3, a4, a5, a6, a7
proc work(x) {
  x := x + 1
  x := x * 3
  x := x - 2
  x := x * x
  x := x % 97
}
`
	for i := 0; i < calls; i++ {
		src += fmt.Sprintf("call work(a%d)\n", i)
	}
	return src
}

func main() {
	fmt.Printf("%-11s %14s %13s %15s %14s\n",
		"call sites", "inlined nodes", "linked nodes", "inlined cycles", "linked cycles")
	for _, n := range []int{1, 2, 4, 8} {
		p, err := ctdf.Compile(program(n))
		if err != nil {
			log.Fatal(err)
		}
		inlined, err := p.Translate(ctdf.Options{Schema: ctdf.Schema2Opt})
		if err != nil {
			log.Fatal(err)
		}
		linked, err := p.TranslateLinked()
		if err != nil {
			log.Fatal(err)
		}
		ri, err := inlined.Run(ctdf.RunConfig{MemLatency: 4})
		if err != nil {
			log.Fatal(err)
		}
		rl, err := linked.Run(ctdf.RunConfig{MemLatency: 4})
		if err != nil {
			log.Fatal(err)
		}
		if ri.Snapshot != rl.Snapshot {
			log.Fatal("inlined and linked runs disagree")
		}
		fmt.Printf("%-11d %14d %13d %15d %14d\n",
			n, inlined.Stats().Nodes, linked.Stats().Nodes, ri.Cycles, rl.Cycles)
	}
	fmt.Println("\nthe linked graph's size is (nearly) flat in the call count while the")
	fmt.Println("inlined one grows linearly; the cycles stay level in both because the")
	fmt.Println("calls' activations execute concurrently (their data is disjoint).")
}
